// Differential suite (ctest label "differential"): every fused, blocked, or
// dynamic-programming fast path is pitted against a naive reference or a
// brute-force oracle from tests/support/. See docs/TESTING.md.
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "core/pipeline.h"
#include "support/corpus_gen.h"
#include "support/oracles.h"
#include "support/reference_kernels.h"
#include "tensor/arena.h"
#include "tensor/batched.h"
#include "tensor/gemm.h"
#include "tensor/ops.h"
#include "tensor/quant.h"
#include "tensor/simd/simd.h"
#include "text/tagging.h"

namespace dlner {
namespace {

using decoders::CrfDecoder;
using decoders::SemiCrfDecoder;
using testsup::AllDecoders;
using testsup::AllEncoders;
using testsup::EnumerateCrf;
using testsup::EnumerateSemiCrf;
using testsup::EntityTypesOf;
using testsup::MaxAbsDiff;
using testsup::OracleExactMatch;
using testsup::RandomTensor;
using testsup::TinyConfig;
using text::TagScheme;
using text::TagSet;

// --- Blocked / zero-skipping GEMM vs textbook triple loop -----------------

TEST(KernelDifferentialTest, MatMulMatchesNaiveAcrossRandomShapes) {
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    const int m = rng.UniformInt(1, 33);
    const int k = rng.UniformInt(1, 70);  // crosses two 32-wide GEMM blocks
    const int n = rng.UniformInt(1, 33);
    // Injected zeros exercise the zero-skipping branch of the fast kernel.
    const Tensor a = RandomTensor({m, k}, &rng, -2.0, 2.0, /*zero_prob=*/0.3);
    const Tensor b = RandomTensor({k, n}, &rng, -2.0, 2.0);
    const Var fast = MatMul(Constant(a), Constant(b));
    EXPECT_LE(MaxAbsDiff(fast->value, testsup::NaiveMatMul(a, b)), 1e-9)
        << "shape " << m << "x" << k << " * " << k << "x" << n;
  }
}

TEST(KernelDifferentialTest, AffineFamilyMatchesUnfusedReferences) {
  Rng rng(103);
  for (int trial = 0; trial < 60; ++trial) {
    const int m = rng.UniformInt(1, 17);
    const int k = rng.UniformInt(1, 40);
    const int n = rng.UniformInt(1, 17);
    const Tensor x = RandomTensor({m, k}, &rng, -1.5, 1.5, 0.2);
    const Tensor w = RandomTensor({k, n}, &rng, -1.5, 1.5);
    const Tensor b = RandomTensor({n}, &rng, -1.5, 1.5);
    const Tensor ref = testsup::NaiveAffine(x, w, b);

    const Var vx = Constant(x), vw = Constant(w), vb = Constant(b);
    EXPECT_LE(MaxAbsDiff(Affine(vx, vw, vb)->value, ref), 1e-9);
    EXPECT_LE(
        MaxAbsDiff(AffineTanh(vx, vw, vb)->value, testsup::NaiveTanh(ref)),
        1e-9);
    EXPECT_LE(MaxAbsDiff(AffineSigmoid(vx, vw, vb)->value,
                         testsup::NaiveSigmoid(ref)),
              1e-9);

    const Tensor xv = RandomTensor({k}, &rng, -1.5, 1.5);
    EXPECT_LE(MaxAbsDiff(AffineVec(Constant(xv), vw, vb)->value,
                         testsup::NaiveAffineVec(xv, w, b)),
              1e-9);
  }
}

// The fused nodes must also backpropagate exactly like the unfused op
// chain they replace (gradcheck bounds truncation error; this pits the two
// autodiff paths against each other directly).
TEST(KernelDifferentialTest, FusedAffineGradientsMatchUnfusedComposition) {
  Rng rng(105);
  struct Case {
    const char* name;
    Var (*fused)(const Var&, const Var&, const Var&);
    Var (*act)(const Var&);
  };
  const Case cases[] = {
      {"affine", Affine, nullptr},
      {"affine_tanh", AffineTanh, [](const Var& v) { return Tanh(v); }},
      {"affine_sigmoid", AffineSigmoid,
       [](const Var& v) { return Sigmoid(v); }},
  };
  for (const Case& c : cases) {
    for (int trial = 0; trial < 8; ++trial) {
      const int m = rng.UniformInt(1, 9);
      const int k = rng.UniformInt(1, 9);
      const int n = rng.UniformInt(1, 9);
      const Tensor xt = RandomTensor({m, k}, &rng, -1.0, 1.0);
      const Tensor wt = RandomTensor({k, n}, &rng, -1.0, 1.0);
      const Tensor bt = RandomTensor({n}, &rng, -1.0, 1.0);

      const Var x1 = Parameter(xt), w1 = Parameter(wt), b1 = Parameter(bt);
      Backward(Sum(c.fused(x1, w1, b1)));

      const Var x2 = Parameter(xt), w2 = Parameter(wt), b2 = Parameter(bt);
      Var unfused = AddRowBroadcast(MatMul(x2, w2), b2);
      if (c.act != nullptr) unfused = c.act(unfused);
      Backward(Sum(unfused));

      EXPECT_LE(MaxAbsDiff(x1->grad, x2->grad), 1e-9) << c.name;
      EXPECT_LE(MaxAbsDiff(w1->grad, w2->grad), 1e-9) << c.name;
      EXPECT_LE(MaxAbsDiff(b1->grad, b2->grad), 1e-9) << c.name;
    }
  }
}

TEST(KernelDifferentialTest, InPlaceRvalueActivationsMatchCopyingOps) {
  // Under NoGradGuard a sole-owner rvalue takes the buffer-reusing path;
  // results must equal both the copying overload and the naive reference.
  NoGradGuard no_grad;
  Rng rng(107);
  for (int trial = 0; trial < 20; ++trial) {
    const int r = rng.UniformInt(1, 12), c = rng.UniformInt(1, 12);
    const Tensor t = RandomTensor({r, c}, &rng, -3.0, 3.0, 0.1);
    EXPECT_LE(MaxAbsDiff(Tanh(Constant(t))->value, testsup::NaiveTanh(t)),
              1e-12);
    EXPECT_LE(
        MaxAbsDiff(Sigmoid(Constant(t))->value, testsup::NaiveSigmoid(t)),
        1e-12);
    EXPECT_LE(MaxAbsDiff(Relu(Constant(t))->value, testsup::NaiveRelu(t)),
              1e-12);
    EXPECT_LE(MaxAbsDiff(Exp(Constant(t))->value, testsup::NaiveExp(t)),
              1e-12);
  }
}

// --- CRF dynamic programs vs path enumeration -----------------------------

Var RandomEncodings(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Constant(RandomTensor({rows, cols}, &rng, -1.0, 1.0));
}

TEST(CrfOracleTest, ForwardViterbiAndMarginalsMatchEnumeration) {
  // Scheme x length grid, K^T capped in the low thousands; includes the
  // n = 7 cases the acceptance criteria call for.
  struct Grid {
    TagScheme scheme;
    std::vector<std::string> types;
    int max_len;
  };
  const Grid grids[] = {
      {TagScheme::kIo, {"A"}, 7},        // 2 tags: up to 128 paths
      {TagScheme::kIo, {"A", "B"}, 7},   // 3 tags: up to 2187 paths
      {TagScheme::kBio, {"A"}, 7},       // 3 tags
      {TagScheme::kBioes, {"A"}, 5},     // 5 tags: up to 3125 paths
  };
  uint64_t seed = 900;
  for (const Grid& g : grids) {
    TagSet tags(g.types, g.scheme);
    for (int n = 1; n <= g.max_len; n += 2) {
      Rng rng(seed);
      CrfDecoder dec(3, &tags, &rng, /*constrained_decoding=*/false);
      const Var enc = RandomEncodings(n, 3, seed + 1);
      const Var emissions = dec.Emissions(enc);
      const testsup::CrfBruteForce oracle = EnumerateCrf(dec, emissions);

      EXPECT_NEAR(dec.LogPartition(emissions)->value[0], oracle.log_partition,
                  1e-8)
          << "scheme=" << TagSchemeToString(g.scheme) << " n=" << n;
      EXPECT_EQ(dec.ViterbiPath(emissions->value), oracle.best_path);
      EXPECT_LE(MaxAbsDiff(dec.Marginals(emissions->value), oracle.marginals),
                1e-8);
      seed += 17;
    }
  }
}

TEST(CrfOracleTest, ConstrainedViterbiMatchesValidPathEnumeration) {
  // The constrained decoder must return the argmax over *scheme-valid*
  // paths, not merely some valid path.
  for (const TagScheme scheme : {TagScheme::kBio, TagScheme::kBioes}) {
    TagSet tags({"A"}, scheme);
    for (int trial = 0; trial < 6; ++trial) {
      const uint64_t seed = 1200 + 31 * trial;
      Rng rng(seed);
      CrfDecoder dec(3, &tags, &rng, /*constrained_decoding=*/true);
      const int n = 2 + trial % 5;  // lengths 2..6
      const Var emissions = dec.Emissions(RandomEncodings(n, 3, seed + 1));
      const testsup::CrfBruteForce oracle = EnumerateCrf(dec, emissions);
      ASSERT_FALSE(oracle.best_valid_path.empty());
      EXPECT_EQ(dec.ViterbiPath(emissions->value), oracle.best_valid_path)
          << "scheme=" << TagSchemeToString(scheme) << " n=" << n;
    }
  }
}

// --- Semi-CRF segmental DP vs segmentation enumeration --------------------

TEST(SemiCrfOracleTest, ForwardAndViterbiMatchEnumeration) {
  for (const int max_len : {1, 2, 3}) {
    for (int n = 2; n <= 7; n += (max_len == 3 ? 1 : 2)) {
      const uint64_t seed = 2000 + 100 * max_len + n;
      Rng rng(seed);
      SemiCrfDecoder dec(3, {"X", "Y"}, max_len, &rng);
      const Var enc = RandomEncodings(n, 3, seed + 1);
      const testsup::SemiCrfBruteForce oracle = EnumerateSemiCrf(dec, enc);

      EXPECT_NEAR(dec.LogPartition(enc)->value[0], oracle.log_partition, 1e-8)
          << "max_len=" << max_len << " n=" << n;

      const auto viterbi = dec.ViterbiSegments(enc);
      EXPECT_EQ(viterbi, oracle.best_segments)
          << "max_len=" << max_len << " n=" << n;
      EXPECT_NEAR(dec.SegmentationScore(enc, viterbi)->value[0],
                  oracle.best_score, 1e-8);
    }
  }
}

// --- Exact-match scorer vs independent multiset oracle --------------------

std::vector<text::Span> RandomSpanList(Rng* rng, int max_tokens) {
  // Deliberately adversarial: duplicates, overlaps, and nested spans are
  // all allowed — the scorer must agree with the oracle on every input.
  const std::vector<std::string> types = {"P", "Q", "R"};
  std::vector<text::Span> spans;
  const int count = rng->UniformInt(0, 5);
  for (int i = 0; i < count; ++i) {
    const int start = rng->UniformInt(0, max_tokens - 2);
    const int end = rng->UniformInt(start + 1, max_tokens);
    spans.push_back({start, end, types[rng->UniformInt(0, 2)]});
  }
  return spans;
}

TEST(ScorerDifferentialTest, ExactMatchEvaluatorMatchesMultisetOracle) {
  Rng rng(3001);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::vector<text::Span>> gold, pred;
    const int sentences = rng.UniformInt(1, 8);
    for (int s = 0; s < sentences; ++s) {
      gold.push_back(RandomSpanList(&rng, 10));
      if (rng.Bernoulli(0.2)) {
        pred.push_back(gold.back());  // sometimes perfect
      } else {
        pred.push_back(RandomSpanList(&rng, 10));
      }
    }
    const eval::ExactResult fast = eval::EvaluateExact(gold, pred);
    const eval::ExactResult oracle = OracleExactMatch(gold, pred);
    ASSERT_EQ(fast.micro.tp, oracle.micro.tp) << "trial " << trial;
    ASSERT_EQ(fast.micro.fp, oracle.micro.fp) << "trial " << trial;
    ASSERT_EQ(fast.micro.fn, oracle.micro.fn) << "trial " << trial;
    EXPECT_NEAR(fast.macro_f1, oracle.macro_f1, 1e-12);
    ASSERT_EQ(fast.per_type.size(), oracle.per_type.size());
    for (const auto& [type, prf] : oracle.per_type) {
      const auto it = fast.per_type.find(type);
      ASSERT_NE(it, fast.per_type.end()) << type;
      EXPECT_EQ(it->second.tp, prf.tp) << type;
      EXPECT_EQ(it->second.fp, prf.fp) << type;
      EXPECT_EQ(it->second.fn, prf.fn) << type;
    }
  }
}

// --- Full pipeline: every encoder x decoder cell vs the oracle scorer -----

TEST(PipelineDifferentialTest, EveryEncoderDecoderComboAgreesWithOracle) {
  // For all 42 taxonomy cells: predictions must be structurally valid and
  // the (parallel, merged) Evaluate must equal the independent scorer run
  // on PredictCorpus output. Untrained models are fine — the scorer
  // contract holds for arbitrary predictions.
  const text::Corpus corpus = testsup::SmallCorpus("conll-like", 10, 77);
  const std::vector<std::string> types = EntityTypesOf(corpus);
  std::vector<std::vector<text::Span>> gold;
  for (const auto& s : corpus.sentences) gold.push_back(s.spans);

  for (const std::string& encoder : AllEncoders()) {
    for (const std::string& decoder : AllDecoders()) {
      const std::string cell = encoder + "/" + decoder;
      core::NerModel model(TinyConfig(encoder, decoder, 5), corpus, types);
      const auto preds = model.PredictCorpus(corpus);
      ASSERT_EQ(static_cast<int>(preds.size()), corpus.size()) << cell;
      for (int i = 0; i < corpus.size(); ++i) {
        EXPECT_TRUE(text::SpansAreValid(preds[i], corpus.sentences[i].size()))
            << cell << " sentence " << i;
      }
      const eval::ExactResult fast = model.Evaluate(corpus);
      const eval::ExactResult oracle = OracleExactMatch(gold, preds);
      EXPECT_EQ(fast.micro.tp, oracle.micro.tp) << cell;
      EXPECT_EQ(fast.micro.fp, oracle.micro.fp) << cell;
      EXPECT_EQ(fast.micro.fn, oracle.micro.fn) << cell;
      EXPECT_NEAR(fast.macro_f1, oracle.macro_f1, 1e-12) << cell;
    }
  }
}

// --- Compiled inference plan vs eager per-sentence path -------------------
//
// The planned batch path shares its GEMM kernel (and replicates every other
// per-element operation order) with the eager modules, so the contract is
// bit-identical predictions, not "close".

std::vector<std::vector<text::Span>> PredictWith(core::NerModel* model,
                                                 const text::Corpus& corpus,
                                                 bool planned) {
  model->set_plan_inference(planned);
  return model->PredictCorpus(corpus);
}

TEST(PlanDifferentialTest, PlannedMatchesEagerOnEveryEncoderDecoderCell) {
  // All 42 taxonomy cells: batched emitters (mlp/cnn/idcnn/bilstm/bigru
  // encoders, softmax/crf decoders) and the eager-bridge fallbacks must both
  // agree exactly with the plain eager path.
  const text::Corpus corpus = testsup::SmallCorpus("conll-like", 20, 91);
  const std::vector<std::string> types = EntityTypesOf(corpus);
  for (const std::string& encoder : AllEncoders()) {
    for (const std::string& decoder : AllDecoders()) {
      const std::string cell = encoder + "/" + decoder;
      core::NerModel model(TinyConfig(encoder, decoder, 7), corpus, types);
      const auto eager = PredictWith(&model, corpus, false);
      const auto planned = PredictWith(&model, corpus, true);
      ASSERT_EQ(planned.size(), eager.size()) << cell;
      for (size_t i = 0; i < eager.size(); ++i) {
        EXPECT_EQ(planned[i], eager[i]) << cell << " sentence " << i;
      }
    }
  }
}

TEST(PlanDifferentialTest, PlannedMatchesEagerAcrossBatchSizesAndRaggedMixes) {
  // Corpus sizes 1, 3, and 17 (17 crosses the 16-sentence micro-batch
  // boundary), plus a mix that interleaves empty and truncated sentences so
  // segment boundaries land everywhere in the packed layout.
  const text::Corpus base = testsup::SmallCorpus("conll-like", 17, 92);
  const std::vector<std::string> types = EntityTypesOf(base);
  const std::pair<std::string, std::string> cells[] = {
      {"cnn", "softmax"}, {"bilstm", "crf"}, {"idcnn", "crf"}};
  for (const auto& [encoder, decoder] : cells) {
    const std::string cell = encoder + "/" + decoder;
    core::NerModel model(TinyConfig(encoder, decoder, 19), base, types);
    for (const int size : {1, 3, 17}) {
      text::Corpus sub;
      sub.sentences.assign(base.sentences.begin(),
                           base.sentences.begin() + size);
      const auto eager = PredictWith(&model, sub, false);
      const auto planned = PredictWith(&model, sub, true);
      ASSERT_EQ(planned.size(), eager.size()) << cell << " size " << size;
      for (size_t i = 0; i < eager.size(); ++i) {
        EXPECT_EQ(planned[i], eager[i])
            << cell << " size " << size << " sentence " << i;
      }
    }
    text::Corpus ragged;
    for (int i = 0; i < base.size(); ++i) {
      if (i % 3 == 0) ragged.sentences.emplace_back();  // empty sentence
      text::Sentence s = base.sentences[i];
      if (i % 2 == 0 && s.size() > 2) {
        s.tokens.resize(2);
        s.spans.clear();
      }
      ragged.sentences.push_back(std::move(s));
    }
    const auto eager = PredictWith(&model, ragged, false);
    const auto planned = PredictWith(&model, ragged, true);
    ASSERT_EQ(planned.size(), eager.size()) << cell;
    for (size_t i = 0; i < eager.size(); ++i) {
      EXPECT_EQ(planned[i], eager[i]) << cell << " ragged sentence " << i;
    }
  }
}

TEST(PlanDifferentialTest, PlannedMatchesEagerWithHybridFeatures) {
  // A composed representation (word + shape features) makes the embed step
  // a multi-slice fill; the planned path must still agree exactly.
  const text::Corpus corpus = testsup::SmallCorpus("conll-like", 12, 93);
  const std::vector<std::string> types = EntityTypesOf(corpus);
  core::NerConfig config = TinyConfig("cnn", "crf", 23);
  config.use_shape = true;
  core::NerModel model(config, corpus, types);
  const auto eager = PredictWith(&model, corpus, false);
  const auto planned = PredictWith(&model, corpus, true);
  ASSERT_EQ(planned.size(), eager.size());
  for (size_t i = 0; i < eager.size(); ++i) {
    EXPECT_EQ(planned[i], eager[i]) << "sentence " << i;
  }
}

// --- Explicit SIMD kernels vs the scalar reference ------------------------
//
// The contract (src/tensor/simd/kernels_scalar.h) is bit-identity, not
// tolerance: simd::Active must reproduce simd::Scalar element for element.
// When the tree is built with DLNER_SIMD=scalar, Active IS Scalar and these
// tests pass trivially; on avx2/neon builds they pit the hand-vectorized
// kernels against the (auto-vectorization-disabled) scalar loops.

template <typename T>
void ExpectBitEqual(const std::vector<T>& simd_out,
                    const std::vector<T>& scalar_out, const char* what) {
  ASSERT_EQ(simd_out.size(), scalar_out.size()) << what;
  for (std::size_t i = 0; i < simd_out.size(); ++i) {
    ASSERT_EQ(simd_out[i], scalar_out[i]) << what << " element " << i;
  }
}

std::vector<Float> CopyOf(const Tensor& t) {
  return std::vector<Float>(t.data(), t.data() + t.size());
}

TEST(SimdDifferentialTest, GemmAccumMatchesScalarBitExactly) {
  Rng rng(4001);
  for (int trial = 0; trial < 60; ++trial) {
    const int m = rng.UniformInt(1, 33);
    const int k = rng.UniformInt(1, 70);
    const int n = rng.UniformInt(1, 40);  // crosses vector-width boundaries
    // Injected zeros exercise the zero-skip branch, which must stay in both
    // instantiations (skipping a*0 is not bit-neutral in f64).
    const Tensor a = RandomTensor({m, k}, &rng, -2.0, 2.0, /*zero_prob=*/0.3);
    const Tensor b = RandomTensor({k, n}, &rng, -2.0, 2.0);
    const Tensor c0 = RandomTensor({m, n}, &rng, -1.0, 1.0);
    std::vector<Float> c_simd = CopyOf(c0);
    std::vector<Float> c_scalar = CopyOf(c0);
    gemm::GemmAccum<simd::Active>(a.data(), b.data(), c_simd.data(), m, k, n);
    gemm::GemmAccum<simd::Scalar>(a.data(), b.data(), c_scalar.data(), m, k,
                                  n);
    ExpectBitEqual(c_simd, c_scalar, "GemmAccum");

    // Strided rows (the conv kernel's in-place window reads).
    const int lda = k + rng.UniformInt(0, 6);
    const Tensor aw = RandomTensor({m, lda}, &rng, -2.0, 2.0, 0.3);
    std::vector<Float> cs_simd = CopyOf(c0);
    std::vector<Float> cs_scalar = CopyOf(c0);
    gemm::GemmAccumStrided<simd::Active>(aw.data(), lda, b.data(),
                                         cs_simd.data(), m, k, n);
    gemm::GemmAccumStrided<simd::Scalar>(aw.data(), lda, b.data(),
                                         cs_scalar.data(), m, k, n);
    ExpectBitEqual(cs_simd, cs_scalar, "GemmAccumStrided");
  }
}

batched::BatchLayout RandomRaggedLayout(Rng* rng) {
  // At least one non-empty segment, plus a mix that lands empty and
  // truncated segments everywhere in the packed buffer.
  batched::BatchLayout layout;
  layout.Add(rng->UniformInt(1, 9));
  const int extra = rng->UniformInt(0, 5);
  for (int s = 0; s < extra; ++s) {
    layout.Add(rng->Bernoulli(0.25) ? 0 : rng->UniformInt(1, 9));
  }
  return layout;
}

TEST(SimdDifferentialTest, BatchedKernelsMatchScalarOnRaggedMixes) {
  Rng rng(4003);
  for (int trial = 0; trial < 12; ++trial) {
    const batched::BatchLayout layout = RandomRaggedLayout(&rng);
    const int rows = layout.rows();
    const int d = rng.UniformInt(1, 12);
    const int n = rng.UniformInt(1, 12);
    const Tensor x = RandomTensor({rows, d}, &rng, -1.5, 1.5, 0.2);

    {
      const Tensor w = RandomTensor({d, n}, &rng, -1.5, 1.5);
      const Tensor b = RandomTensor({n}, &rng, -1.0, 1.0);
      std::vector<Float> o_simd(static_cast<std::size_t>(rows) * n);
      std::vector<Float> o_scalar(o_simd.size());
      batched::AffineT<simd::Active>(x.data(), rows, w, b, o_simd.data(),
                                     batched::Act::kRelu);
      batched::AffineT<simd::Scalar>(x.data(), rows, w, b, o_scalar.data(),
                                     batched::Act::kRelu);
      ExpectBitEqual(o_simd, o_scalar, "AffineT");
    }
    {
      const int dilation = 1 + trial % 3;
      const Tensor w = RandomTensor({3 * d, n}, &rng, -1.5, 1.5);
      const Tensor b = RandomTensor({n}, &rng, -1.0, 1.0);
      std::vector<Float> o_simd(static_cast<std::size_t>(rows) * n);
      std::vector<Float> o_scalar(o_simd.size());
      batched::ConvSegmentsT<simd::Active>(x.data(), d, layout, 3, dilation,
                                           w, b, o_simd.data(),
                                           batched::Act::kRelu);
      batched::ConvSegmentsT<simd::Scalar>(x.data(), d, layout, 3, dilation,
                                           w, b, o_scalar.data(),
                                           batched::Act::kRelu);
      ExpectBitEqual(o_simd, o_scalar, "ConvSegmentsT");
    }
    {
      const Tensor gain = RandomTensor({d}, &rng, 0.5, 1.5);
      const Tensor bias = RandomTensor({d}, &rng, -0.5, 0.5);
      std::vector<Float> o_simd(static_cast<std::size_t>(rows) * d);
      std::vector<Float> o_scalar(o_simd.size());
      batched::LayerNormRowsT<simd::Active>(x.data(), rows, d, gain, bias,
                                            o_simd.data());
      batched::LayerNormRowsT<simd::Scalar>(x.data(), rows, d, gain, bias,
                                            o_scalar.data());
      ExpectBitEqual(o_simd, o_scalar, "LayerNormRowsT");
    }
    {
      std::vector<Float> o_simd(static_cast<std::size_t>(rows) * 2 * d);
      std::vector<Float> o_scalar(o_simd.size());
      batched::GlobalMaxConcatT<simd::Active>(x.data(), d, layout,
                                              o_simd.data());
      batched::GlobalMaxConcatT<simd::Scalar>(x.data(), d, layout,
                                              o_scalar.data());
      ExpectBitEqual(o_simd, o_scalar, "GlobalMaxConcatT");
    }
    {
      const int hidden = rng.UniformInt(1, 6);
      const Tensor wf = RandomTensor({d + hidden, 4 * hidden}, &rng, -1, 1);
      const Tensor bf = RandomTensor({4 * hidden}, &rng, -0.5, 0.5);
      const Tensor wb = RandomTensor({d + hidden, 4 * hidden}, &rng, -1, 1);
      const Tensor bb = RandomTensor({4 * hidden}, &rng, -0.5, 0.5);
      const batched::LstmDir fwd{&wf, &bf}, bwd{&wb, &bb};
      std::vector<Float> o_simd(static_cast<std::size_t>(rows) * 2 * hidden);
      std::vector<Float> o_scalar(o_simd.size());
      Arena arena;
      batched::BiLstmT<simd::Active>(x.data(), d, hidden, layout, fwd, bwd,
                                     o_simd.data(), &arena);
      arena.Reset();
      batched::BiLstmT<simd::Scalar>(x.data(), d, hidden, layout, fwd, bwd,
                                     o_scalar.data(), &arena);
      ExpectBitEqual(o_simd, o_scalar, "BiLstmT");
    }
    {
      const int hidden = rng.UniformInt(1, 6);
      const Tensor rzwf = RandomTensor({d + hidden, 2 * hidden}, &rng, -1, 1);
      const Tensor rzbf = RandomTensor({2 * hidden}, &rng, -0.5, 0.5);
      const Tensor cwf = RandomTensor({d + hidden, hidden}, &rng, -1, 1);
      const Tensor cbf = RandomTensor({hidden}, &rng, -0.5, 0.5);
      const Tensor rzwb = RandomTensor({d + hidden, 2 * hidden}, &rng, -1, 1);
      const Tensor rzbb = RandomTensor({2 * hidden}, &rng, -0.5, 0.5);
      const Tensor cwb = RandomTensor({d + hidden, hidden}, &rng, -1, 1);
      const Tensor cbb = RandomTensor({hidden}, &rng, -0.5, 0.5);
      const batched::GruDir fwd{&rzwf, &rzbf, &cwf, &cbf};
      const batched::GruDir bwd{&rzwb, &rzbb, &cwb, &cbb};
      std::vector<Float> o_simd(static_cast<std::size_t>(rows) * 2 * hidden);
      std::vector<Float> o_scalar(o_simd.size());
      Arena arena;
      batched::BiGruT<simd::Active>(x.data(), d, hidden, layout, fwd, bwd,
                                    o_simd.data(), &arena);
      arena.Reset();
      batched::BiGruT<simd::Scalar>(x.data(), d, hidden, layout, fwd, bwd,
                                    o_scalar.data(), &arena);
      ExpectBitEqual(o_simd, o_scalar, "BiGruT");
    }
  }
}

TEST(SimdDifferentialTest, QuantizedKernelsMatchScalarExactly) {
  // Int8 path: quantize -> int32 GEMM -> f64 dequant. Integer results are
  // exactly equal across ISAs by arithmetic (not just by ordering
  // discipline), and the f64 epilogue follows the bit-identity contract.
  Rng rng(4007);
  for (int trial = 0; trial < 20; ++trial) {
    const int rows = rng.UniformInt(1, 20);
    const int k = rng.UniformInt(1, 40);
    const int n = rng.UniformInt(1, 40);
    const Tensor x = RandomTensor({rows, k}, &rng, -3.0, 3.0, 0.4);
    const Tensor w = RandomTensor({k, n}, &rng, -1.5, 1.5);
    const Tensor b = RandomTensor({n}, &rng, -1.0, 1.0);
    const quant::QuantizedMatrix qm = quant::QuantizeMatrix(w, 3.0);

    std::vector<std::int8_t> q_simd(static_cast<std::size_t>(rows) * k);
    std::vector<std::int8_t> q_scalar(q_simd.size());
    simd::Active::Quantize(x.data(), qm.act_inv_scale, q_simd.data(),
                           rows * k);
    simd::Scalar::Quantize(x.data(), qm.act_inv_scale, q_scalar.data(),
                           rows * k);
    ExpectBitEqual(q_simd, q_scalar, "Quantize");

    std::vector<std::int32_t> acc_simd(static_cast<std::size_t>(rows) * n, 0);
    std::vector<std::int32_t> acc_scalar(acc_simd.size(), 0);
    simd::Active::QGemm(q_scalar.data(), k, qm.q.data(), acc_simd.data(),
                        rows, k, n);
    simd::Scalar::QGemm(q_scalar.data(), k, qm.q.data(), acc_scalar.data(),
                        rows, k, n);
    ExpectBitEqual(acc_simd, acc_scalar, "QGemm");

    std::vector<Float> d_simd(n), d_scalar(n);
    simd::Active::Dequant(acc_scalar.data(), qm.dequant.data(), b.data(),
                          d_simd.data(), n);
    simd::Scalar::Dequant(acc_scalar.data(), qm.dequant.data(), b.data(),
                          d_scalar.data(), n);
    ExpectBitEqual(d_simd, d_scalar, "Dequant");

    std::vector<Float> o_simd(static_cast<std::size_t>(rows) * n);
    std::vector<Float> o_scalar(o_simd.size());
    quant::QAffineT<simd::Active>(x.data(), rows, qm, b, o_simd.data(),
                                  batched::Act::kRelu);
    quant::QAffineT<simd::Scalar>(x.data(), rows, qm, b, o_scalar.data(),
                                  batched::Act::kRelu);
    ExpectBitEqual(o_simd, o_scalar, "QAffineT");
  }

  // Fused quantized convolution over ragged layouts (empty segments, window
  // clipping at segment boundaries).
  for (int trial = 0; trial < 8; ++trial) {
    const batched::BatchLayout layout = RandomRaggedLayout(&rng);
    const int rows = layout.rows();
    const int d = rng.UniformInt(1, 10);
    const int n = rng.UniformInt(1, 10);
    const int dilation = 1 + trial % 3;
    const Tensor x = RandomTensor({rows, d}, &rng, -2.0, 2.0, 0.3);
    const Tensor w = RandomTensor({3 * d, n}, &rng, -1.5, 1.5);
    const Tensor b = RandomTensor({n}, &rng, -1.0, 1.0);
    const quant::QuantizedMatrix qm = quant::QuantizeMatrix(w, 2.0);
    std::vector<Float> o_simd(static_cast<std::size_t>(rows) * n);
    std::vector<Float> o_scalar(o_simd.size());
    quant::QConvSegmentsT<simd::Active>(x.data(), d, layout, 3, dilation, qm,
                                        b, o_simd.data(),
                                        batched::Act::kRelu);
    quant::QConvSegmentsT<simd::Scalar>(x.data(), d, layout, 3, dilation, qm,
                                        b, o_scalar.data(),
                                        batched::Act::kRelu);
    ExpectBitEqual(o_simd, o_scalar, "QConvSegmentsT");
  }
}

// --- Int8 quantized inference vs the f32 planned path ---------------------

TEST(QuantDifferentialTest, QuantizedInferenceWithinF1BoundOfF32) {
  // Post-training quantization accuracy contract: micro-F1 within 0.2
  // points of the f32 planned path. The model must actually be trained —
  // an undertrained model's argmax margins are small enough that int8
  // rounding flips predictions and the bound fails for reasons that say
  // nothing about the quantization scheme.
  const text::Corpus corpus = testsup::SmallCorpus("conll-like", 60, 95);
  const std::vector<std::string> types = EntityTypesOf(corpus);
  core::TrainConfig tc;
  tc.epochs = 12;
  tc.lr = 0.02;
  auto pipeline = core::Pipeline::Train(TinyConfig("cnn", "softmax", 31), tc,
                                        corpus, nullptr, types);
  core::NerModel* model = pipeline->model();
  model->set_plan_inference(true);
  const double f32_f1 = model->Evaluate(corpus).micro.f1();
  ASSERT_GT(model->CalibrateQuantization(corpus), 0);
  model->set_quantized_inference(true);
  ASSERT_TRUE(model->has_quant_calibration());
  const double int8_f1 = model->Evaluate(corpus).micro.f1();
  EXPECT_LE(std::fabs(f32_f1 - int8_f1), 0.002)
      << "f32 micro-F1 " << f32_f1 << " vs int8 micro-F1 " << int8_f1;
}

TEST(PlanDifferentialTest, PlannedEvaluateMatchesEagerEvaluate) {
  const text::Corpus corpus = testsup::SmallCorpus("conll-like", 15, 94);
  const std::vector<std::string> types = EntityTypesOf(corpus);
  core::NerModel model(TinyConfig("bilstm", "softmax", 29), corpus, types);
  model.set_plan_inference(false);
  const eval::ExactResult eager = model.Evaluate(corpus);
  model.set_plan_inference(true);
  const eval::ExactResult planned = model.Evaluate(corpus);
  EXPECT_EQ(planned.micro.tp, eager.micro.tp);
  EXPECT_EQ(planned.micro.fp, eager.micro.fp);
  EXPECT_EQ(planned.micro.fn, eager.micro.fn);
  EXPECT_EQ(planned.macro_f1, eager.macro_f1);
}

}  // namespace
}  // namespace dlner
