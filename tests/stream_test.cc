// Tests for the streaming document-level tagger (src/stream/ +
// text/stream_tokenizer.h):
//
//   * tokenizer chunk invariance — output is a pure function of the
//     concatenated byte stream, no matter how it is cut into Feed() calls
//     (including cuts inside multi-byte UTF-8 sequences);
//   * StreamTagger chunk-boundary invariance at sizes {1, 2, 7, 4096,
//     whole-document}, with document context both off and on;
//   * bit-identity of the doc_context=false streaming path with
//     Pipeline::TagCorpus on the same sentence split;
//   * the entity-consistency cache's vote/inject/relabel semantics;
//   * deterministic structure-aware fuzz of Feed (tests/support/mutate.h)
//     plus hand-picked hostile inputs: truncated UTF-8, NUL bytes, and a
//     1 MiB single-token line. The sanitizer preset runs this slice under
//     asan (ctest -L stream).
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/scenarios.h"
#include "stream/entity_memory.h"
#include "stream/stream_tagger.h"
#include "support/mutate.h"
#include "tensor/rng.h"
#include "text/stream_tokenizer.h"
#include "text/types.h"

namespace dlner::stream {
namespace {

// ---------------------------------------------------------------------------
// StreamTokenizer

std::vector<std::vector<std::string>> Drain(text::StreamTokenizer* tokenizer) {
  std::vector<std::vector<std::string>> out;
  while (tokenizer->HasSentence()) out.push_back(tokenizer->NextSentence());
  return out;
}

std::vector<std::vector<std::string>> TokenizeChunked(const std::string& text,
                                                      int chunk) {
  text::StreamTokenizer tokenizer;
  std::vector<std::vector<std::string>> out;
  for (std::size_t i = 0; i < text.size();
       i += static_cast<std::size_t>(chunk)) {
    tokenizer.Feed(std::string_view(text).substr(
        i, static_cast<std::size_t>(chunk)));
    for (auto& s : Drain(&tokenizer)) out.push_back(std::move(s));
  }
  tokenizer.Flush();
  for (auto& s : Drain(&tokenizer)) out.push_back(std::move(s));
  return out;
}

TEST(StreamTokenizerTest, SplitsSentencesOnNewlineAndTerminators) {
  const auto sentences = TokenizeChunked(
      "John visited Paris .\nMary stayed home !\nDone ? Next line", 4096);
  ASSERT_EQ(sentences.size(), 4u);
  EXPECT_EQ(sentences[0],
            (std::vector<std::string>{"John", "visited", "Paris", "."}));
  EXPECT_EQ(sentences[1],
            (std::vector<std::string>{"Mary", "stayed", "home", "!"}));
  EXPECT_EQ(sentences[2], (std::vector<std::string>{"Done", "?"}));
  EXPECT_EQ(sentences[3], (std::vector<std::string>{"Next", "line"}));
}

TEST(StreamTokenizerTest, DotInsideTokenDoesNotEndSentence) {
  const auto sentences = TokenizeChunked("pi is 3.14 not 3 .\n", 4096);
  ASSERT_EQ(sentences.size(), 1u);
  EXPECT_EQ(sentences[0],
            (std::vector<std::string>{"pi", "is", "3.14", "not", "3", "."}));
}

TEST(StreamTokenizerTest, ChunkSizeNeverChangesOutput) {
  // Multi-byte UTF-8 tokens so 1- and 2-byte chunks cut inside sequences.
  const std::string text =
      "Crémieux visited Åre .\nDie Universität zu Köln !\n€42 said 张伟\n"
      "trailing partial";
  const auto whole = TokenizeChunked(text, static_cast<int>(text.size()));
  ASSERT_EQ(whole.size(), 4u);
  for (const int chunk : {1, 2, 3, 5, 7, 64}) {
    EXPECT_EQ(TokenizeChunked(text, chunk), whole) << "chunk=" << chunk;
  }
}

TEST(StreamTokenizerTest, MaxSentenceTokensForcesBreak) {
  text::StreamTokenizerOptions opts;
  opts.max_sentence_tokens = 4;
  text::StreamTokenizer tokenizer(opts);
  tokenizer.Feed("a b c d e f g h i\n");
  const auto sentences = Drain(&tokenizer);
  ASSERT_EQ(sentences.size(), 3u);
  EXPECT_EQ(sentences[0], (std::vector<std::string>{"a", "b", "c", "d"}));
  EXPECT_EQ(sentences[1], (std::vector<std::string>{"e", "f", "g", "h"}));
  EXPECT_EQ(sentences[2], (std::vector<std::string>{"i"}));
}

TEST(StreamTokenizerTest, FlushEmitsPartialSentenceAndToken) {
  text::StreamTokenizer tokenizer;
  tokenizer.Feed("no trailing delimi");
  EXPECT_FALSE(tokenizer.HasSentence());
  tokenizer.Flush();
  const auto sentences = Drain(&tokenizer);
  ASSERT_EQ(sentences.size(), 1u);
  EXPECT_EQ(sentences[0],
            (std::vector<std::string>{"no", "trailing", "delimi"}));

  tokenizer.Feed("   \t \n  ");
  tokenizer.Flush();
  EXPECT_FALSE(tokenizer.HasSentence());  // whitespace-only yields nothing
}

// ---------------------------------------------------------------------------
// EntityMemory

TEST(EntityMemoryTest, InjectsRememberedSurfaces) {
  EntityMemory memory;
  memory.Observe({"President", "Zhang", "spoke", "."}, {{1, 2, "PER"}});
  EXPECT_EQ(memory.MajorityType({"Zhang"}), "PER");

  std::vector<text::Span> spans;  // decoder missed the repeat mention
  memory.Apply({"Zhang", "smiled", "."}, &spans);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (text::Span{0, 1, "PER"}));
}

TEST(EntityMemoryTest, InjectionPrefersLongestMatchAndNeverOverlaps) {
  EntityMemory memory;
  memory.Observe({"New", "York", "City"}, {{0, 3, "LOC"}});
  memory.Observe({"New", "York"}, {{0, 2, "LOC"}});

  // Longest remembered surface wins at position 0.
  std::vector<text::Span> spans;
  memory.Apply({"New", "York", "City", "mayor"}, &spans);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (text::Span{0, 3, "LOC"}));

  // An existing span blocks injection over the covered region.
  spans = {{1, 3, "ORG"}};
  memory.Apply({"New", "York", "City", "mayor"}, &spans);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (text::Span{1, 3, "ORG"}));
}

TEST(EntityMemoryTest, MinVotesGatesInjection) {
  EntityMemoryOptions opts;
  opts.min_votes_to_inject = 2;
  EntityMemory memory(opts);
  memory.Observe({"Zhang"}, {{0, 1, "PER"}});
  std::vector<text::Span> spans;
  memory.Apply({"Zhang"}, &spans);
  EXPECT_TRUE(spans.empty());  // one vote is not enough

  memory.Observe({"Zhang"}, {{0, 1, "PER"}});
  memory.Apply({"Zhang"}, &spans);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].type, "PER");
}

TEST(EntityMemoryTest, RelabelRequiresDominantMajority) {
  EntityMemory memory;  // min_votes_to_relabel=2, relabel_ratio=2
  memory.Observe({"Jordan"}, {{0, 1, "PER"}});
  std::vector<text::Span> spans = {{0, 1, "LOC"}};
  memory.Apply({"Jordan"}, &spans);
  EXPECT_EQ(spans[0].type, "LOC");  // one PER vote must not rewrite

  memory.Observe({"Jordan"}, {{0, 1, "PER"}});
  spans = {{0, 1, "LOC"}};
  memory.Apply({"Jordan"}, &spans);
  EXPECT_EQ(spans[0].type, "PER");  // 2 votes, ratio 2:1 vs 1 -> relabel
}

TEST(EntityMemoryTest, VoteTiesBreakLexicographically) {
  EntityMemory memory;
  memory.Observe({"Amazon"}, {{0, 1, "ORG"}});
  memory.Observe({"Amazon"}, {{0, 1, "LOC"}});
  EXPECT_EQ(memory.MajorityType({"Amazon"}), "LOC");  // LOC < ORG
}

TEST(EntityMemoryTest, SeparatorBytesInTokensCannotForgeSurfaces) {
  EntityMemory memory;
  // A hostile token containing the internal separator must not collide with
  // the two-token surface ["a","b"].
  memory.Observe({std::string("a\x1f") + "b"}, {{0, 1, "PER"}});
  std::vector<text::Span> spans;
  memory.Apply({"a", "b"}, &spans);
  EXPECT_TRUE(spans.empty());
}

TEST(EntityMemoryTest, ClearForgetsEverything) {
  EntityMemory memory;
  memory.Observe({"Zhang"}, {{0, 1, "PER"}});
  ASSERT_EQ(memory.size(), 1u);
  memory.Clear();
  EXPECT_EQ(memory.size(), 0u);
  EXPECT_EQ(memory.MajorityType({"Zhang"}), "");
}

TEST(EntityMemoryTest, SurfaceTableIsCapped) {
  EntityMemoryOptions opts;
  opts.max_surfaces = 4;
  EntityMemory memory(opts);
  for (int i = 0; i < 10; ++i) {
    memory.Observe({"tok" + std::to_string(i)}, {{0, 1, "PER"}});
  }
  EXPECT_EQ(memory.size(), 4u);
}

// ---------------------------------------------------------------------------
// StreamTagger (trained pipeline fixture)

struct StreamFixture {
  std::unique_ptr<core::Pipeline> pipeline;       // doc_context defaults off
  std::unique_ptr<core::Pipeline> doc_pipeline;   // doc_context defaults on
  text::Corpus test;                              // consistency documents
};

const StreamFixture& Fixture() {
  static StreamFixture* f = [] {
    auto* fx = new StreamFixture;
    data::ScenarioOptions opts;
    opts.seed = 41;
    opts.num_sentences = 60;
    const data::ScenarioSplit split =
        data::MakeScenarioSplit(data::Scenario::kEntityConsistency, opts);
    fx->test = split.test;
    core::NerConfig config;
    config.encoder = "cnn";
    config.decoder = "softmax";
    config.word_dim = 12;
    config.hidden_dim = 12;
    config.word_unk_dropout = 0.2;
    config.seed = 7;
    core::TrainConfig tc;
    tc.epochs = 4;
    tc.lr = 0.02;
    const auto types =
        data::ScenarioEntityTypes(data::Scenario::kEntityConsistency);
    fx->pipeline = core::Pipeline::Train(config, tc, split.train, nullptr,
                                         types);
    config.doc_context = true;  // runtime knob: same weights-shape, doc on
    fx->doc_pipeline = core::Pipeline::Train(config, tc, split.train, nullptr,
                                             types);
    return fx;
  }();
  return *f;
}

bool SameOutput(const std::vector<TaggedSentence>& a,
                const std::vector<TaggedSentence>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tokens != b[i].tokens || a[i].spans != b[i].spans) return false;
  }
  return true;
}

std::vector<TaggedSentence> StreamChunked(const core::Pipeline& pipeline,
                                          const std::string& raw, int chunk,
                                          const StreamOptions& opts) {
  StreamTagger tagger(&pipeline, opts);
  std::vector<TaggedSentence> out;
  for (std::size_t i = 0; i < raw.size();
       i += static_cast<std::size_t>(chunk)) {
    for (auto& ts : tagger.Feed(std::string_view(raw).substr(
             i, static_cast<std::size_t>(chunk)))) {
      out.push_back(std::move(ts));
    }
  }
  for (auto& ts : tagger.Flush()) out.push_back(std::move(ts));
  return out;
}

// The acceptance-criterion invariance: cutting the byte stream at sizes
// {1, 2, 7, 4096, whole} never changes a single emitted byte — with the
// entity memory off AND on (the memory is applied strictly per sentence,
// so batch grouping cannot leak into the output).
TEST(StreamTaggerTest, ChunkBoundaryInvariance) {
  const StreamFixture& f = Fixture();
  std::string raw;
  for (int d = 0; d < f.test.DocCount() && d < 8; ++d) {
    raw += data::RenderDocument(f.test, d);
  }
  ASSERT_GT(raw.size(), 600u);
  for (const bool doc : {false, true}) {
    StreamOptions opts;
    opts.doc_context = doc ? 1 : 0;
    opts.flush_sentences = 3;  // small so mid-stream flushes actually happen
    const auto whole = StreamChunked(*f.pipeline, raw,
                                     static_cast<int>(raw.size()), opts);
    ASSERT_FALSE(whole.empty());
    for (const int chunk : {1, 2, 7, 4096}) {
      EXPECT_TRUE(SameOutput(
          StreamChunked(*f.pipeline, raw, chunk, opts), whole))
          << "chunk=" << chunk << " doc_context=" << doc;
    }
  }
}

// With doc_context off, streaming must be bit-identical to the batch path
// (Pipeline::TagCorpus) on the same sentence split — the property that makes
// the streaming endpoint trustworthy as a drop-in.
TEST(StreamTaggerTest, StatelessStreamingMatchesTagCorpusBitIdentically) {
  const StreamFixture& f = Fixture();
  const std::vector<std::vector<text::Span>> expected =
      f.pipeline->TagCorpus(f.test);

  StreamOptions opts;
  opts.doc_context = 0;
  opts.flush_sentences = 5;
  std::vector<TaggedSentence> emitted;
  for (int d = 0; d < f.test.DocCount(); ++d) {
    // One tagger per document, mirroring how documents stream in practice.
    for (auto& ts : StreamChunked(*f.pipeline, data::RenderDocument(f.test, d),
                                  17, opts)) {
      emitted.push_back(std::move(ts));
    }
  }
  ASSERT_EQ(emitted.size(), expected.size());
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    EXPECT_EQ(emitted[i].tokens, f.test.sentences[i].tokens) << i;
    EXPECT_EQ(emitted[i].spans, expected[i]) << i;
  }
}

TEST(StreamTaggerTest, DocContextDefaultsFromPipelineConfig) {
  const StreamFixture& f = Fixture();
  EXPECT_FALSE(StreamTagger(f.pipeline.get()).doc_context());
  EXPECT_TRUE(StreamTagger(f.doc_pipeline.get()).doc_context());
  StreamOptions force_off;
  force_off.doc_context = 0;
  EXPECT_FALSE(StreamTagger(f.doc_pipeline.get(), force_off).doc_context());
  StreamOptions force_on;
  force_on.doc_context = 1;
  EXPECT_TRUE(StreamTagger(f.pipeline.get(), force_on).doc_context());
}

TEST(StreamTaggerTest, SizeTriggerAndFlushSemantics) {
  const StreamFixture& f = Fixture();
  StreamOptions opts;
  opts.flush_sentences = 2;
  opts.flush_deadline_us = 0;  // size trigger only
  StreamTagger tagger(f.pipeline.get(), opts);

  EXPECT_TRUE(tagger.Feed("John visited Paris .\n").empty());
  EXPECT_EQ(tagger.PendingSentences(), 1);
  const auto burst = tagger.Feed("Mary left Rome .\n");
  EXPECT_EQ(burst.size(), 2u);  // second sentence tripped the size trigger
  EXPECT_EQ(tagger.PendingSentences(), 0);

  // Flush tags the final partial sentence and resets document state.
  EXPECT_TRUE(tagger.Feed("trailing words without newline").empty());
  const auto tail = tagger.Flush();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].tokens,
            (std::vector<std::string>{"trailing", "words", "without",
                                      "newline"}));
  EXPECT_EQ(tagger.PendingSentences(), 0);
  EXPECT_EQ(tagger.memory().size(), 0u);
}

TEST(StreamTaggerTest, FlushClearsEntityMemoryBetweenDocuments) {
  const StreamFixture& f = Fixture();
  StreamOptions opts;
  opts.doc_context = 1;
  StreamTagger tagger(f.pipeline.get(), opts);
  tagger.Feed(data::RenderDocument(f.test, 0));
  tagger.Flush();
  EXPECT_EQ(tagger.memory().size(), 0u);
}

// ---------------------------------------------------------------------------
// Deterministic fuzz of Feed: structure-aware mutations of a valid rendered
// document plus hostile hand-picked inputs. Invariants: no crash (the asan
// run is the point), emitted tokens exactly match an independent tokenizer
// pass over the same bytes, and every span stays inside its sentence.

void CheckStreamAgainstTokenizer(const core::Pipeline& pipeline,
                                 const std::string& bytes, uint64_t seed) {
  Rng rng(seed);
  StreamOptions opts;
  opts.flush_sentences = 1 + static_cast<int>(rng.UniformInt(0, 4));
  opts.doc_context = static_cast<int>(rng.UniformInt(0, 1));
  StreamTagger tagger(&pipeline, opts);
  std::vector<TaggedSentence> emitted;
  std::size_t i = 0;
  while (i < bytes.size()) {
    const std::size_t chunk =
        1 + static_cast<std::size_t>(rng.UniformInt(0, 63));
    for (auto& ts :
         tagger.Feed(std::string_view(bytes).substr(i, chunk))) {
      emitted.push_back(std::move(ts));
    }
    i += chunk;
  }
  for (auto& ts : tagger.Flush()) emitted.push_back(std::move(ts));

  text::StreamTokenizer tokenizer;
  tokenizer.Feed(bytes);
  tokenizer.Flush();
  for (const TaggedSentence& ts : emitted) {
    ASSERT_TRUE(tokenizer.HasSentence());
    EXPECT_EQ(ts.tokens, tokenizer.NextSentence());
    for (const text::Span& span : ts.spans) {
      ASSERT_GE(span.start, 0);
      ASSERT_LT(span.start, span.end);
      ASSERT_LE(span.end, static_cast<int>(ts.tokens.size()));
    }
  }
  EXPECT_FALSE(tokenizer.HasSentence());
}

TEST(StreamFuzzTest, MutatedDocumentsNeverBreakTheStream) {
  const StreamFixture& f = Fixture();
  const std::string base = data::RenderDocument(f.test, 0);
  const std::string other =
      data::RenderDocument(f.test, f.test.DocCount() > 1 ? 1 : 0);
  for (uint64_t iter = 0; iter < 48; ++iter) {
    Rng rng(1000 + iter);  // the failing iter reproduces the exact input
    const std::string mutated = testsup::MutateBytes(base, other, &rng);
    CheckStreamAgainstTokenizer(*f.pipeline, mutated, 2000 + iter);
  }
}

TEST(StreamFuzzTest, HostileInputsAreHandled) {
  const StreamFixture& f = Fixture();
  const std::vector<std::string> hostile = {
      std::string("caf\xC3"),                    // truncated UTF-8 at EOF
      std::string("caf\xC3 suite .\n"),          // truncated UTF-8 mid-stream
      std::string("\xE2\x82"),                   // lone truncated 3-byte seq
      std::string("a\0b c\0 .\n", 9),            // NUL bytes inside tokens
      std::string(3, '\n'),                      // blank lines only
      std::string("\xFF\xFE garbage \x80\x81\n"),  // invalid UTF-8 soup
  };
  uint64_t seed = 9000;
  for (const std::string& bytes : hostile) {
    CheckStreamAgainstTokenizer(*f.pipeline, bytes, seed++);
  }

  // A 1 MiB single-token line must pass through without splitting, without
  // quadratic blowup, and without leaking (the asan run checks the latter).
  std::string huge(1 << 20, 'x');
  huge += " .\n";
  StreamTagger tagger(f.pipeline.get());
  std::vector<TaggedSentence> emitted;
  for (auto& ts : tagger.Feed(huge)) emitted.push_back(std::move(ts));
  for (auto& ts : tagger.Flush()) emitted.push_back(std::move(ts));
  ASSERT_EQ(emitted.size(), 1u);
  ASSERT_EQ(emitted[0].tokens.size(), 2u);
  EXPECT_EQ(emitted[0].tokens[0].size(), static_cast<std::size_t>(1 << 20));
}

}  // namespace
}  // namespace dlner::stream
