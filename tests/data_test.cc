#include <set>
#include <string>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/gazetteer.h"
#include "data/synthetic.h"
#include "text/types.h"

namespace dlner::data {
namespace {

using text::Corpus;
using text::Span;

class GenreTest : public ::testing::TestWithParam<Genre> {};

TEST_P(GenreTest, GeneratesRequestedSize) {
  GenOptions opts = DefaultOptionsFor(GetParam());
  opts.num_sentences = 50;
  opts.seed = 11;
  Corpus c = GenerateCorpus(GetParam(), opts);
  EXPECT_EQ(c.size(), 50);
  EXPECT_GT(c.TokenCount(), 0);
  EXPECT_GT(c.EntityCount(), 0);
}

TEST_P(GenreTest, SpansAreValidAndTyped) {
  GenOptions opts = DefaultOptionsFor(GetParam());
  opts.num_sentences = 120;
  opts.seed = 23;
  Corpus c = GenerateCorpus(GetParam(), opts);
  const auto& types = EntityTypesFor(GetParam());
  const std::set<std::string> type_set(types.begin(), types.end());
  for (const auto& s : c.sentences) {
    ASSERT_TRUE(text::SpansAreValid(s.spans, s.size()));
    for (const Span& sp : s.spans) {
      EXPECT_TRUE(type_set.count(sp.type) > 0)
          << "unexpected type " << sp.type << " for genre "
          << GenreToString(GetParam());
    }
  }
}

TEST_P(GenreTest, DeterministicForSeed) {
  GenOptions opts = DefaultOptionsFor(GetParam());
  opts.num_sentences = 20;
  opts.seed = 99;
  Corpus a = GenerateCorpus(GetParam(), opts);
  Corpus b = GenerateCorpus(GetParam(), opts);
  ASSERT_EQ(a.size(), b.size());
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.sentences[i].tokens, b.sentences[i].tokens);
    EXPECT_EQ(a.sentences[i].spans, b.sentences[i].spans);
  }
}

TEST_P(GenreTest, EveryTypeEventuallyAppears) {
  GenOptions opts = DefaultOptionsFor(GetParam());
  opts.num_sentences = 2000;
  opts.seed = 7;
  Corpus c = GenerateCorpus(GetParam(), opts);
  std::set<std::string> seen;
  for (const auto& s : c.sentences) {
    for (const Span& sp : s.spans) seen.insert(sp.type);
  }
  for (const std::string& t : EntityTypesFor(GetParam())) {
    EXPECT_TRUE(seen.count(t) > 0) << "type never generated: " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Genres, GenreTest,
                         ::testing::Values(Genre::kNews, Genre::kOnto,
                                           Genre::kSocial,
                                           Genre::kFineGrained,
                                           Genre::kNested, Genre::kBio),
                         [](const auto& info) {
                           return GenreToString(info.param);
                         });

TEST(GenreFlatnessTest, FlatGenresStayFlat) {
  for (Genre g : {Genre::kNews, Genre::kOnto, Genre::kSocial, Genre::kBio}) {
    GenOptions opts = DefaultOptionsFor(g);
    opts.num_sentences = 200;
    Corpus c = GenerateCorpus(g, opts);
    for (const auto& s : c.sentences) {
      EXPECT_TRUE(text::SpansAreFlat(s.spans))
          << "overlap in flat genre " << GenreToString(g);
    }
  }
}

TEST(NestedGenreTest, ProducesOverlappingSpans) {
  GenOptions opts;
  opts.num_sentences = 200;
  opts.seed = 5;
  Corpus c = GenerateCorpus(Genre::kNested, opts);
  int nested_sentences = 0;
  for (const auto& s : c.sentences) {
    if (!text::SpansAreFlat(s.spans)) ++nested_sentences;
  }
  // The survey cites 17-30% nested sentences in GENIA/ACE; our generator
  // should produce a substantial fraction.
  EXPECT_GT(nested_sentences, 40);
}

TEST(OovTest, HeldoutFractionRaisesOovRate) {
  GenOptions train_opts;
  train_opts.num_sentences = 400;
  train_opts.seed = 1;
  Corpus train = GenerateCorpus(Genre::kNews, train_opts);

  GenOptions seen_opts = train_opts;
  seen_opts.seed = 2;
  Corpus test_seen = GenerateCorpus(Genre::kNews, seen_opts);

  GenOptions oov_opts = train_opts;
  oov_opts.seed = 2;
  oov_opts.oov_entity_fraction = 0.8;
  Corpus test_oov = GenerateCorpus(Genre::kNews, oov_opts);

  const double rate_seen = OovEntityTokenRate(train, test_seen);
  const double rate_oov = OovEntityTokenRate(train, test_oov);
  EXPECT_LT(rate_seen, 0.05);
  EXPECT_GT(rate_oov, 0.3);
}

TEST(NoiseTest, SocialDefaultsProduceNoise) {
  GenOptions opts = DefaultOptionsFor(Genre::kSocial);
  opts.num_sentences = 300;
  Corpus c = GenerateCorpus(Genre::kSocial, opts);
  int hashtags = 0;
  int lowercase_entities = 0;
  for (const auto& s : c.sentences) {
    for (const Span& sp : s.spans) {
      const std::string& first = s.tokens[sp.start];
      if (!first.empty() && first[0] == '#') ++hashtags;
      if (!first.empty() && std::islower(static_cast<unsigned char>(first[0])))
        ++lowercase_entities;
    }
  }
  EXPECT_GT(hashtags, 10);
  EXPECT_GT(lowercase_entities, 30);
}

TEST(UnlabeledTest, ProducesTokenSequences) {
  auto sents = GenerateUnlabeledText(Genre::kNews, 30, 3);
  EXPECT_EQ(sents.size(), 30u);
  for (const auto& s : sents) EXPECT_FALSE(s.empty());
}

TEST(GenreStringTest, RoundTrip) {
  for (Genre g : {Genre::kNews, Genre::kOnto, Genre::kSocial,
                  Genre::kFineGrained, Genre::kNested, Genre::kBio}) {
    EXPECT_EQ(GenreFromString(GenreToString(g)), g);
  }
}

// --- Splits and stats ---

TEST(SplitTest, PartitionsWithoutLossOrDuplication) {
  GenOptions opts;
  opts.num_sentences = 100;
  Corpus c = GenerateCorpus(Genre::kNews, opts);
  DataSplit split = SplitCorpus(c, 0.7, 0.15, 42);
  EXPECT_EQ(split.train.size() + split.dev.size() + split.test.size(), 100);
  EXPECT_EQ(split.train.size(), 70);
  EXPECT_EQ(split.dev.size(), 15);
}

TEST(StatsTest, BasicCounts) {
  Corpus c;
  c.sentences.push_back({{"a", "b", "c", "d"}, {{0, 2, "X"}}});
  c.sentences.push_back({{"e", "f"}, {{0, 1, "Y"}}});
  CorpusStats stats = ComputeStats(c);
  EXPECT_EQ(stats.sentences, 2);
  EXPECT_EQ(stats.tokens, 6);
  EXPECT_EQ(stats.entities, 2);
  EXPECT_EQ(stats.num_types, 2);
  EXPECT_DOUBLE_EQ(stats.entity_density, 3.0 / 6.0);
  EXPECT_DOUBLE_EQ(stats.avg_sentence_len, 3.0);
  EXPECT_EQ(stats.per_type.at("X"), 1);
}

TEST(StatsTest, NestedFraction) {
  Corpus c;
  c.sentences.push_back({{"a", "b", "c"}, {{0, 3, "X"}, {1, 2, "Y"}}});
  c.sentences.push_back({{"d"}, {}});
  EXPECT_DOUBLE_EQ(ComputeStats(c).nested_fraction, 0.5);
}

TEST(RegistryTest, AllStandardDatasetsGenerate) {
  for (const DatasetSpec& spec : StandardDatasets()) {
    Corpus c = MakeDataset(spec.name, 20, 1);
    EXPECT_EQ(c.size(), 20) << spec.name;
  }
  EXPECT_EQ(StandardDatasets().size(), 6u);
}

TEST(RegistryDeathTest, UnknownNameAborts) {
  EXPECT_DEATH(MakeDataset("imaginary", 10, 1), "unknown dataset");
}

// --- Label corruption ---

TEST(CorruptTest, ZeroRateIsIdentity) {
  Corpus c = MakeDataset("conll-like", 50, 3);
  Corpus noisy = CorruptLabels(c, 0.0, EntityTypesFor(Genre::kNews), 9);
  for (int i = 0; i < c.size(); ++i) {
    EXPECT_EQ(noisy.sentences[i].spans, c.sentences[i].spans);
  }
}

TEST(CorruptTest, HighRateChangesLabelsButKeepsValidity) {
  Corpus c = MakeDataset("conll-like", 100, 4);
  Corpus noisy = CorruptLabels(c, 0.6, EntityTypesFor(Genre::kNews), 10);
  int changed = 0;
  for (int i = 0; i < c.size(); ++i) {
    ASSERT_TRUE(text::SpansAreValid(noisy.sentences[i].spans,
                                    noisy.sentences[i].size()));
    ASSERT_TRUE(text::SpansAreFlat(noisy.sentences[i].spans));
    if (noisy.sentences[i].spans != c.sentences[i].spans) ++changed;
  }
  EXPECT_GT(changed, 30);
}

// --- Gazetteer ---

TEST(GazetteerTest, MatchFeaturesMarkMembership) {
  Gazetteer gaz;
  gaz.AddEntry("PER", {"John", "Smith"});
  gaz.AddEntry("LOC", {"Paris"});
  auto feats = gaz.MatchFeatures({"John", "Smith", "visited", "Paris"});
  ASSERT_EQ(feats.size(), 4u);
  const int per = 0, loc = 1;  // insertion order
  EXPECT_EQ(gaz.types()[per], "PER");
  EXPECT_EQ(feats[0][per], 1.0);
  EXPECT_EQ(feats[1][per], 1.0);
  EXPECT_EQ(feats[2][per], 0.0);
  EXPECT_EQ(feats[2][loc], 0.0);
  EXPECT_EQ(feats[3][loc], 1.0);
}

TEST(GazetteerTest, PartialMatchDoesNotFire) {
  Gazetteer gaz;
  gaz.AddEntry("PER", {"John", "Smith"});
  auto feats = gaz.MatchFeatures({"John", "Jones"});
  EXPECT_EQ(feats[0][0], 0.0);
  EXPECT_EQ(feats[1][0], 0.0);
}

TEST(GazetteerTest, AnnotatePrefersLongestMatch) {
  Gazetteer gaz;
  gaz.AddEntry("LOC", {"New"});
  gaz.AddEntry("LOC", {"New", "York"});
  auto spans = gaz.Annotate({"New", "York", "is", "big"});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], (Span{0, 2, "LOC"}));
}

TEST(GazetteerTest, DuplicateEntriesIgnored) {
  Gazetteer gaz;
  gaz.AddEntry("PER", {"Ann"});
  gaz.AddEntry("PER", {"Ann"});
  EXPECT_EQ(gaz.size(), 1);
}

TEST(GazetteerTest, FromCorpusFullCoverageAnnotatesGoldSurfaces) {
  Corpus c = MakeDataset("conll-like", 100, 5);
  Gazetteer gaz = Gazetteer::FromCorpus(c, 1.0, 1);
  EXPECT_GT(gaz.size(), 10);
  // Every gold mention surface must be re-findable (though Annotate may
  // produce extra matches where surfaces repeat as non-entities).
  int found = 0, total = 0;
  for (const auto& s : c.sentences) {
    auto spans = gaz.Annotate(s.tokens);
    std::set<Span> predicted(spans.begin(), spans.end());
    for (const Span& gold : s.spans) {
      ++total;
      if (predicted.count(gold) > 0) ++found;
    }
  }
  EXPECT_GT(static_cast<double>(found) / total, 0.85);
}

TEST(GazetteerTest, PartialCoverageMissesEntities) {
  Corpus c = MakeDataset("conll-like", 100, 6);
  Gazetteer full = Gazetteer::FromCorpus(c, 1.0, 1);
  Gazetteer half = Gazetteer::FromCorpus(c, 0.5, 1);
  EXPECT_LT(half.size(), full.size());
  EXPECT_GT(half.size(), 0);
}

}  // namespace
}  // namespace dlner::data
