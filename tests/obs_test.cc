// Tests for the observability subsystem (src/obs/): enablement switches,
// scoped-span tracing and its Chrome trace_event export, the metrics
// registry, the structured JSONL logger, and — most importantly — the
// guarantees the rest of the toolkit relies on: the disabled path records
// nothing, and turning collection on does not change model output.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/config.h"
#include "core/model.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runtime/runtime.h"

namespace dlner::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser, just enough to validate the schema
// of the emitted artifacts without adding a dependency. Numbers are parsed
// with strtod; objects use std::map (duplicate keys keep the last value).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  std::map<std::string, JsonValue> obj;

  bool is(Kind k) const { return kind == k; }
  const JsonValue* find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = Value(out);
    Ws();
    return ok && pos_ == s_.size();
  }

 private:
  void Ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                   s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool Value(JsonValue* out) {
    Ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return Object(out);
    if (c == '[') return Array(out);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return String(&out->str);
    }
    if (Literal("null")) return true;  // kind already kNull
    if (Literal("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->b = true;
      return true;
    }
    if (Literal("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->b = false;
      return true;
    }
    return Number(out);
  }
  bool Number(JsonValue* out) {
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    out->num = std::strtod(start, &end);
    if (end == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    pos_ += static_cast<std::size_t>(end - start);
    return true;
  }
  bool String(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            pos_ += 4;   // validated as hex by the escape writer
            c = '?';     // code point value irrelevant for these tests
            break;
          }
          default:
            return false;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    Ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      if (!Value(&v)) return false;
      out->arr.push_back(std::move(v));
      Ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool Object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    Ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      Ws();
      std::string key;
      if (pos_ >= s_.size() || !String(&key)) return false;
      Ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue v;
      if (!Value(&v)) return false;
      out->obj[key] = std::move(v);
      Ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------

// Every test starts and ends with collection off, empty buffers, and the
// environment-derived defaults, so tests compose in any order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAllState(); }
  void TearDown() override { ResetAllState(); }

  static void ResetAllState() {
    ResetForTesting();
    EnableTracing(false);
    EnableMetrics(false);
    Tracer::Get().Clear();
    Metrics::Get().ResetAll();
  }
};

TEST_F(ObsTest, SwitchesDefaultOffAndToggle) {
  EXPECT_FALSE(TracingEnabled());
  EXPECT_FALSE(MetricsEnabled());
  EnableTracing(true);
  EnableMetrics(true);
  EXPECT_TRUE(TracingEnabled());
  EXPECT_TRUE(MetricsEnabled());
  EnableTracing(false);
  EnableMetrics(false);
  EXPECT_FALSE(TracingEnabled());
  EXPECT_FALSE(MetricsEnabled());
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  {
    ScopedSpan outer("outer");
    ScopedSpan inner("inner");
  }
  EXPECT_TRUE(Tracer::Get().Snapshot().empty());
  EXPECT_EQ(Tracer::Get().recorded(), 0u);
}

TEST_F(ObsTest, SpanNestingAndOrdering) {
  EnableTracing(true);
  {
    ScopedSpan outer("outer");
    { ScopedSpan inner("inner"); }
    { ScopedSpan inner2("dynamic", std::string("suffix")); }
  }
  const std::vector<SpanEvent> spans = Tracer::Get().Snapshot();
  ASSERT_EQ(spans.size(), 3u);
  // Sorted by start time: outer opened first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "dynamic/suffix");
  // Nesting: children start no earlier and end no later than the parent.
  for (int i = 1; i < 3; ++i) {
    EXPECT_GE(spans[i].start_us, spans[0].start_us);
    EXPECT_LE(spans[i].start_us + spans[i].dur_us,
              spans[0].start_us + spans[0].dur_us);
  }
  // All on the calling thread.
  EXPECT_EQ(spans[0].tid, spans[1].tid);
  EXPECT_EQ(spans[1].tid, spans[2].tid);
}

TEST_F(ObsTest, SpansCarryPerThreadIds) {
  EnableTracing(true);
  { ScopedSpan main_span("on_main"); }
  std::thread t([] { ScopedSpan worker_span("on_worker"); });
  t.join();
  const std::vector<SpanEvent> spans = Tracer::Get().Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  int main_tid = 0, worker_tid = 0;
  for (const SpanEvent& s : spans) {
    if (s.name == "on_main") main_tid = s.tid;
    if (s.name == "on_worker") worker_tid = s.tid;
  }
  EXPECT_GT(main_tid, 0);
  EXPECT_GT(worker_tid, 0);
  EXPECT_NE(main_tid, worker_tid);
}

TEST_F(ObsTest, ChromeTraceJsonSchema) {
  EnableTracing(true);
  {
    ScopedSpan a("alpha");
    ScopedSpan b("beta");
  }
  std::ostringstream os;
  Tracer::Get().WriteChromeTrace(os);
  const std::string text = os.str();

  JsonValue root;
  ASSERT_TRUE(JsonParser(text).Parse(&root)) << text;
  ASSERT_TRUE(root.is(JsonValue::Kind::kObject));
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(JsonValue::Kind::kArray));
  ASSERT_FALSE(events->arr.empty());

  int complete_events = 0;
  for (const JsonValue& e : events->arr) {
    ASSERT_TRUE(e.is(JsonValue::Kind::kObject));
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is(JsonValue::Kind::kString));
    ASSERT_NE(e.find("name"), nullptr);
    ASSERT_NE(e.find("pid"), nullptr);
    ASSERT_NE(e.find("tid"), nullptr);
    EXPECT_TRUE(e.find("pid")->is(JsonValue::Kind::kNumber));
    EXPECT_TRUE(e.find("tid")->is(JsonValue::Kind::kNumber));
    if (ph->str == "X") {
      ++complete_events;
      const JsonValue* ts = e.find("ts");
      const JsonValue* dur = e.find("dur");
      ASSERT_NE(ts, nullptr);
      ASSERT_NE(dur, nullptr);
      EXPECT_TRUE(ts->is(JsonValue::Kind::kNumber));
      EXPECT_TRUE(dur->is(JsonValue::Kind::kNumber));
      EXPECT_GE(dur->num, 0.0);
    }
  }
  EXPECT_EQ(complete_events, 2);

  // Export is deterministic: a second write produces identical bytes.
  std::ostringstream os2;
  Tracer::Get().WriteChromeTrace(os2);
  EXPECT_EQ(text, os2.str());
}

TEST_F(ObsTest, HistogramPercentilesAndStats) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Observe(static_cast<double>(v));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.sum(), 500500.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Power-of-two buckets: estimates are exact to within a factor of two.
  const double p50 = h.Percentile(50.0);
  EXPECT_GE(p50, 250.0);
  EXPECT_LE(p50, 750.0);
  const double p99 = h.Percentile(99.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1000.0);  // clamped to the observed max
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), 1000.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50.0), 0.0);
}

TEST_F(ObsTest, MetricsRegistryBasicsAndJson) {
  Metrics& m = Metrics::Get();
  m.counter("t.counter")->Add(3);
  m.counter("t.counter")->Add(4);
  EXPECT_EQ(m.counter("t.counter")->value(), 7);
  // Same name returns the same instrument.
  EXPECT_EQ(m.counter("t.counter"), m.counter("t.counter"));

  m.gauge("t.gauge")->Set(1.5);
  m.gauge("t.gauge")->Add(0.5);
  EXPECT_DOUBLE_EQ(m.gauge("t.gauge")->value(), 2.0);
  m.gauge("t.gauge")->SetMax(1.0);  // no-op: below current
  EXPECT_DOUBLE_EQ(m.gauge("t.gauge")->value(), 2.0);

  m.histogram("t.hist")->Observe(10.0);
  m.series("t.series")->Append(0, 1.0);
  m.series("t.series")->Append(1, 0.5);

  std::ostringstream os;
  m.WriteJson(os);
  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root)) << os.str();
  const JsonValue* schema = root.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "dlner-metrics-v1");
  const JsonValue* series = root.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_TRUE(series->is(JsonValue::Kind::kObject));

  const JsonValue* counter = series->find("t.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->find("type")->str, "counter");
  EXPECT_DOUBLE_EQ(counter->find("value")->num, 7.0);

  const JsonValue* hist = series->find("t.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("type")->str, "histogram");
  EXPECT_DOUBLE_EQ(hist->find("count")->num, 1.0);
  ASSERT_NE(hist->find("p50"), nullptr);
  ASSERT_NE(hist->find("p99"), nullptr);

  const JsonValue* ser = series->find("t.series");
  ASSERT_NE(ser, nullptr);
  EXPECT_EQ(ser->find("type")->str, "series");
  ASSERT_EQ(ser->find("points")->arr.size(), 2u);

  // Deterministic: same registry, same bytes.
  std::ostringstream os2;
  m.WriteJson(os2);
  EXPECT_EQ(os.str(), os2.str());

  m.ResetAll();
  EXPECT_EQ(m.counter("t.counter")->value(), 0);
  EXPECT_TRUE(m.series("t.series")->points().empty());
}

TEST_F(ObsTest, WriteJsonCanSkipEmptyHistograms) {
  Metrics& m = Metrics::Get();
  m.histogram("t.hist.empty");  // registered but never observed
  m.histogram("t.hist.filled")->Observe(3.0);
  m.counter("t.keep")->Add(1);

  MetricsJsonOptions options;
  options.skip_empty_histograms = true;
  std::ostringstream skipped;
  m.WriteJson(skipped, options);
  JsonValue root;
  ASSERT_TRUE(JsonParser(skipped.str()).Parse(&root)) << skipped.str();
  const JsonValue* series = root.find("series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->find("t.hist.empty"), nullptr);
  EXPECT_NE(series->find("t.hist.filled"), nullptr);
  EXPECT_NE(series->find("t.keep"), nullptr);

  // Default options still export the all-zero histogram.
  std::ostringstream full;
  m.WriteJson(full);
  JsonValue root2;
  ASSERT_TRUE(JsonParser(full.str()).Parse(&root2)) << full.str();
  EXPECT_NE(root2.find("series")->find("t.hist.empty"), nullptr);
}

TEST_F(ObsTest, DisabledMetricsPathProducesNoTensorAccounting) {
  Metrics& m = Metrics::Get();
  ASSERT_FALSE(MetricsEnabled());
  {
    Tensor a({64, 64});
    Tensor b = a;
    Tensor c = std::move(b);
  }
  EXPECT_EQ(m.counter("tensor.allocs")->value(), 0);
  EXPECT_EQ(m.counter("tensor.alloc_bytes")->value(), 0);
  EXPECT_DOUBLE_EQ(m.gauge("tensor.live_bytes")->value(), 0.0);
  EXPECT_DOUBLE_EQ(m.gauge("tensor.peak_bytes")->value(), 0.0);
}

TEST_F(ObsTest, TensorAccountingBalancesLiveBytes) {
  EnableMetrics(true);
  Metrics& m = Metrics::Get();
  const double live_before = m.gauge("tensor.live_bytes")->value();
  {
    Tensor a({32, 32});
    Tensor b = a;             // copy re-tracks
    Tensor c = std::move(b);  // move transfers, no new allocation tracked
    EXPECT_GT(m.gauge("tensor.live_bytes")->value(), live_before);
    EXPECT_GE(m.gauge("tensor.peak_bytes")->value(),
              m.gauge("tensor.live_bytes")->value());
  }
  // Every tracked allocation was released on scope exit.
  EXPECT_DOUBLE_EQ(m.gauge("tensor.live_bytes")->value(), live_before);
  EXPECT_GE(m.counter("tensor.allocs")->value(), 2);
}

TEST_F(ObsTest, LoggerLevelFilteringAndForceLog) {
  const std::string path = ::testing::TempDir() + "obs_test_log.jsonl";
  ASSERT_TRUE(SetLogFile(path));
  SetLogLevel(LogLevel::kWarn);
  Log(LogLevel::kInfo, "dropped", {{"k", 1}});
  Log(LogLevel::kWarn, "kept", {{"k", 2}, {"s", "va\"lue"}, {"f", 0.5}});
  ForceLog(LogLevel::kInfo, "forced", {{"ok", true}});
  SetLogFile("");  // back to stderr; flushes and closes the file

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);

  JsonValue first, second;
  ASSERT_TRUE(JsonParser(lines[0]).Parse(&first)) << lines[0];
  ASSERT_TRUE(JsonParser(lines[1]).Parse(&second)) << lines[1];
  EXPECT_EQ(first.find("event")->str, "kept");
  EXPECT_EQ(first.find("level")->str, "warn");
  EXPECT_DOUBLE_EQ(first.find("k")->num, 2.0);
  EXPECT_EQ(first.find("s")->str, "va\"lue");
  EXPECT_DOUBLE_EQ(first.find("f")->num, 0.5);
  ASSERT_NE(first.find("ts_us"), nullptr);
  EXPECT_EQ(second.find("event")->str, "forced");
  EXPECT_TRUE(second.find("ok")->b);
  std::remove(path.c_str());
}

TEST_F(ObsTest, LogLevelStringRoundTrip) {
  EXPECT_EQ(LogLevelFromString("debug"), LogLevel::kDebug);
  EXPECT_EQ(LogLevelFromString("info"), LogLevel::kInfo);
  EXPECT_EQ(LogLevelFromString("warn"), LogLevel::kWarn);
  EXPECT_EQ(LogLevelFromString("error"), LogLevel::kError);
  EXPECT_EQ(LogLevelFromString("off"), LogLevel::kOff);
  EXPECT_EQ(LogLevelFromString("bogus", LogLevel::kError), LogLevel::kError);
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "info");
}

TEST_F(ObsTest, ConfigObsFieldsAreRuntimeOnly) {
  core::NerConfig a;
  core::NerConfig b;
  b.log_level = 0;
  b.collect_traces = 1;
  b.collect_metrics = 1;
  std::ostringstream sa, sb;
  core::WriteConfig(sa, a);
  core::WriteConfig(sb, b);
  // Observability fields never reach the checkpoint bytes.
  EXPECT_EQ(sa.str(), sb.str());

  std::istringstream in(sb.str());
  core::NerConfig loaded;
  ASSERT_TRUE(core::ReadConfig(in, &loaded));
  // Like `threads`, deserialization never touches the runtime-only fields:
  // a loaded checkpoint keeps the "leave process state alone" default.
  EXPECT_EQ(loaded.log_level, -1);
  EXPECT_EQ(loaded.collect_traces, -1);
  EXPECT_EQ(loaded.collect_metrics, -1);
}

// The observability invariant the whole design leans on: collection must
// never change what the model computes.
TEST_F(ObsTest, TracingDoesNotChangeEvaluateOrPredictions) {
  const text::Corpus corpus = data::MakeDataset("conll-like", 24, 5);
  std::vector<std::string> types = {"LOC", "MISC", "ORG", "PER"};
  core::NerConfig config;
  config.encoder = "cnn";
  config.decoder = "crf";
  config.seed = 11;
  core::NerModel model(config, corpus, types);

  const eval::ExactResult plain = model.Evaluate(corpus);
  const auto plain_predictions = model.PredictCorpus(corpus);

  EnableTracing(true);
  EnableMetrics(true);
  const eval::ExactResult traced = model.Evaluate(corpus);
  const auto traced_predictions = model.PredictCorpus(corpus);
  EnableTracing(false);
  EnableMetrics(false);

  EXPECT_EQ(plain.micro.tp, traced.micro.tp);
  EXPECT_EQ(plain.micro.fp, traced.micro.fp);
  EXPECT_EQ(plain.micro.fn, traced.micro.fn);
  ASSERT_EQ(plain.per_type.size(), traced.per_type.size());
  for (const auto& [type, prf] : plain.per_type) {
    const auto it = traced.per_type.find(type);
    ASSERT_NE(it, traced.per_type.end());
    EXPECT_EQ(prf.tp, it->second.tp);
    EXPECT_EQ(prf.fp, it->second.fp);
    EXPECT_EQ(prf.fn, it->second.fn);
  }
  ASSERT_EQ(plain_predictions.size(), traced_predictions.size());
  for (std::size_t i = 0; i < plain_predictions.size(); ++i) {
    EXPECT_EQ(plain_predictions[i], traced_predictions[i]) << "sentence " << i;
  }

  // The traced run actually produced the spans the docs promise.
  std::vector<std::string> names;
  for (const SpanEvent& s : Tracer::Get().Snapshot()) names.push_back(s.name);
  for (const char* expected : {"evaluate", "predict_corpus", "encode/cnn",
                               "decode/crf", "embed"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing span " << expected;
  }
}

TEST_F(ObsTest, PlannedInferencePublishesArenaGaugesAndPlanSpans) {
  const text::Corpus corpus = data::MakeDataset("conll-like", 16, 6);
  std::vector<std::string> types = {"LOC", "MISC", "ORG", "PER"};
  core::NerConfig config;
  config.encoder = "cnn";
  config.decoder = "softmax";
  config.seed = 12;
  core::NerModel model(config, corpus, types);
  ASSERT_TRUE(model.plan_inference());

  EnableTracing(true);
  EnableMetrics(true);
  model.Evaluate(corpus);
  EnableTracing(false);
  EnableMetrics(false);

  Metrics& m = Metrics::Get();
  EXPECT_GT(m.gauge("tensor.arena.bytes_reserved")->value(), 0.0);
  EXPECT_GT(m.gauge("tensor.arena.high_water")->value(), 0.0);
  // Peak live bytes can never exceed what the arena reserved.
  EXPECT_LE(m.gauge("tensor.arena.high_water")->value(),
            m.gauge("tensor.arena.bytes_reserved")->value());
  EXPECT_GT(m.counter("plan.batches")->value(), 0);
  EXPECT_EQ(m.counter("plan.sentences")->value(),
            static_cast<std::int64_t>(corpus.size()));

  std::vector<std::string> names;
  for (const SpanEvent& s : Tracer::Get().Snapshot()) names.push_back(s.name);
  for (const char* expected : {"plan/compile", "plan/batch"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing span " << expected;
  }
}

// ---------------------------------------------------------------------------
// Sliding-window instruments. All tests drive the explicit-clock overloads,
// so epoch rotation is deterministic.

TEST_F(ObsTest, WindowedHistogramRotatesEpochBuckets) {
  WindowedHistogram h(1000, 4);  // 4 x 1 ms window
  h.Observe(100.0, 10'500);      // epoch 10
  h.Observe(200.0, 10'700);      // epoch 10
  h.Observe(400.0, 11'100);      // epoch 11

  HistogramSnapshot s = h.Read(11'200);
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 700.0);
  EXPECT_DOUBLE_EQ(s.min, 100.0);
  EXPECT_DOUBLE_EQ(s.max, 400.0);

  // Window of epochs [10, 13] still holds everything; [11, 14] has rolled
  // epoch 10 off; [12, 15] is past every observation.
  EXPECT_EQ(h.Read(13'900).count, 3);
  EXPECT_EQ(h.Read(14'000).count, 1);
  EXPECT_DOUBLE_EQ(h.Read(14'000).sum, 400.0);
  EXPECT_EQ(h.Read(15'000).count, 0);
  EXPECT_DOUBLE_EQ(h.Read(15'000).Percentile(99.0), 0.0);

  // Writing a fresh epoch reclaims its ring slot without resurrecting the
  // expired data that used to live there.
  h.Observe(50.0, 14'200);  // epoch 14 shares slot 14 % 4 with epoch 10
  HistogramSnapshot s2 = h.Read(14'300);
  EXPECT_EQ(s2.count, 2);  // epoch 11's 400 + epoch 14's 50
  EXPECT_DOUBLE_EQ(s2.min, 50.0);
  EXPECT_DOUBLE_EQ(s2.max, 400.0);

  h.Reset();
  EXPECT_EQ(h.Read(14'300).count, 0);
}

TEST_F(ObsTest, WindowedHistogramPercentilesOnPartialWindow) {
  // Only one of 12 epochs is populated; percentiles must come from the
  // occupied slot alone, interpolated and clamped like the lifetime
  // Histogram.
  WindowedHistogram h(1'000'000, 12);
  const std::uint64_t now = 5'000'000;
  for (int v = 1; v <= 100; ++v) h.Observe(static_cast<double>(v), now);
  HistogramSnapshot s = h.Read(now);
  EXPECT_EQ(s.count, 100);
  EXPECT_DOUBLE_EQ(s.sum, 5050.0);
  const double p50 = s.Percentile(50.0);
  EXPECT_GE(p50, 25.0);
  EXPECT_LE(p50, 75.0);
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(100.0), 100.0);
  const double p99 = s.Percentile(99.0);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 100.0);  // clamped to the observed max, not the 127 bound
}

TEST_F(ObsTest, WindowedCounterRollsOffExpiredEpochs) {
  WindowedCounter c(1000, 4);
  c.Add(5, 10'500);
  c.Add(3, 11'500);
  EXPECT_EQ(c.WindowTotal(11'600), 8);
  EXPECT_DOUBLE_EQ(c.RatePerSec(11'600), 8.0 / 0.004);
  EXPECT_EQ(c.WindowTotal(14'900), 3);  // epoch 10 rolled off
  EXPECT_EQ(c.WindowTotal(15'100), 0);
  c.Add(2, 15'200);
  EXPECT_EQ(c.WindowTotal(15'300), 2);
  c.Reset();
  EXPECT_EQ(c.WindowTotal(15'300), 0);
}

// Rotation under concurrency: writers sweep the fake clock across ~hundreds
// of epochs while a reader merges slots. Run under the tsan preset, this
// exercises the slot zero/re-tag path against concurrent relaxed recording;
// the assertions only pin down what survives any interleaving.
TEST_F(ObsTest, WindowedHistogramConcurrentObserveDuringRotation) {
  WindowedHistogram h(50, 8);
  const std::uint64_t base = 1'000'000;
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 2000;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&h, base, t] {
      for (int i = 0; i < kPerWriter; ++i) {
        h.Observe(static_cast<double>(t + 1),
                  base + static_cast<std::uint64_t>(i) * 7);
      }
    });
  }
  std::thread reader([&h, &stop, base] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h.Read(base + kPerWriter * 7);
    }
  });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  HistogramSnapshot s = h.Read(base + (kPerWriter - 1) * 7);
  EXPECT_GE(s.count, 0);
  EXPECT_LE(s.count, static_cast<std::int64_t>(kWriters) * kPerWriter);
}

TEST_F(ObsTest, SpanArgsAndTraceContextReachChromeTrace) {
  EnableTracing(true);
  {
    ScopedTraceContext ctx(42);
    ScopedSpan span("annotated");
    span.Annotate("req", static_cast<std::int64_t>(7));
    span.Annotate("reqs", std::string("[1,2]"));
  }
  { ScopedSpan span("plain"); }
  EnableTracing(false);

  const std::string path = ::testing::TempDir() + "obs_args_trace.json";
  ASSERT_TRUE(Tracer::Get().WriteChromeTrace(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  JsonValue root;
  ASSERT_TRUE(JsonParser(buf.str()).Parse(&root)) << buf.str();
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);

  const JsonValue* annotated = nullptr;
  const JsonValue* plain = nullptr;
  for (const JsonValue& e : events->arr) {
    const JsonValue* name = e.find("name");
    if (name == nullptr) continue;
    if (name->str == "annotated") annotated = &e;
    if (name->str == "plain") plain = &e;
  }
  ASSERT_NE(annotated, nullptr);
  ASSERT_NE(plain, nullptr);

  const JsonValue* args = annotated->find("args");
  ASSERT_NE(args, nullptr);
  ASSERT_TRUE(args->is(JsonValue::Kind::kObject));
  ASSERT_NE(args->find("req"), nullptr);
  EXPECT_DOUBLE_EQ(args->find("req")->num, 7.0);
  const JsonValue* reqs = args->find("reqs");
  ASSERT_NE(reqs, nullptr);
  ASSERT_TRUE(reqs->is(JsonValue::Kind::kArray));
  ASSERT_EQ(reqs->arr.size(), 2u);
  const JsonValue* ctx_arg = args->find("ctx");
  ASSERT_NE(ctx_arg, nullptr);
  EXPECT_DOUBLE_EQ(ctx_arg->num, 42.0);

  // A span recorded with no annotations and no active context stays lean.
  EXPECT_EQ(plain->find("args"), nullptr);
}

TEST_F(ObsTest, TraceContextRestoredOnScopeExit) {
  EXPECT_EQ(CurrentTraceContext(), 0u);
  {
    ScopedTraceContext outer(5);
    EXPECT_EQ(CurrentTraceContext(), 5u);
    {
      ScopedTraceContext inner(9);
      EXPECT_EQ(CurrentTraceContext(), 9u);
    }
    EXPECT_EQ(CurrentTraceContext(), 5u);
  }
  EXPECT_EQ(CurrentTraceContext(), 0u);
}

TEST_F(ObsTest, PublishTraceMetricsExportsSpanCounters) {
  EnableTracing(true);
  { ScopedSpan a("one"); }
  { ScopedSpan b("two"); }
  EnableTracing(false);
  PublishTraceMetrics();
  Metrics& m = Metrics::Get();
  EXPECT_EQ(m.counter("trace.recorded_spans")->value(), 2);
  EXPECT_EQ(m.counter("trace.dropped_spans")->value(), 0);
  // Publish is reset-then-set: calling it again must not double-count.
  PublishTraceMetrics();
  EXPECT_EQ(m.counter("trace.recorded_spans")->value(), 2);
}

TEST_F(ObsTest, WritePrometheusExpositionShape) {
  Metrics& m = Metrics::Get();
  m.counter("t.requests.total")->Add(5);
  m.gauge("t.queue-depth")->Set(3.5);  // '-' must sanitize to '_'
  m.histogram("t.lat_us")->Observe(10.0);
  m.histogram("t.lat_us")->Observe(1000.0);
  m.windowed_histogram("t.win.lat_us")->Observe(25.0);
  m.windowed_counter("t.win.reqs")->Add(7);
  m.series("t.curve")->Append(0, 1.0);  // series have no Prometheus shape

  std::ostringstream os;
  m.WritePrometheus(os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE t_requests_total counter\nt_requests_total 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE t_queue_depth gauge\nt_queue_depth 3.5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE t_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("t_lat_us_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("t_lat_us_count 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_win_lat_us summary"), std::string::npos);
  EXPECT_NE(text.find("t_win_lat_us{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(text.find("t_win_lat_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("t_win_reqs 7"), std::string::npos);
  EXPECT_NE(text.find("t_win_reqs_per_sec"), std::string::npos);
  EXPECT_EQ(text.find("t_curve"), std::string::npos);

  // Exposition-format lint: every line is a comment or `name value` /
  // `name{labels} value`, names restricted to [a-zA-Z0-9_:].
  std::istringstream lines(text);
  for (std::string line; std::getline(lines, line);) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE ", 0), 0u) << line;
      continue;
    }
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << line;
    }
    const std::string value = line.substr(space + 1);
    if (value != "+Inf" && value != "-Inf" && value != "NaN") {
      char* end = nullptr;
      std::strtod(value.c_str(), &end);
      EXPECT_EQ(*end, '\0') << line;
    }
  }

  // Deterministic: same registry, same bytes.
  std::ostringstream os2;
  m.WritePrometheus(os2);
  EXPECT_EQ(text, os2.str());
}

TEST_F(ObsTest, WriteJsonExportsWindowedInstruments) {
  Metrics& m = Metrics::Get();
  m.windowed_histogram("t.win.lat_us")->Observe(40.0);
  m.windowed_counter("t.win.reqs")->Add(3);
  std::ostringstream os;
  m.WriteJson(os);
  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root)) << os.str();
  const JsonValue* series = root.find("series");
  ASSERT_NE(series, nullptr);

  const JsonValue* wh = series->find("t.win.lat_us");
  ASSERT_NE(wh, nullptr);
  EXPECT_EQ(wh->find("type")->str, "windowed_histogram");
  EXPECT_DOUBLE_EQ(wh->find("count")->num, 1.0);
  ASSERT_NE(wh->find("p99"), nullptr);
  ASSERT_NE(wh->find("window_s"), nullptr);
  EXPECT_DOUBLE_EQ(wh->find("window_s")->num, 60.0);

  const JsonValue* wc = series->find("t.win.reqs");
  ASSERT_NE(wc, nullptr);
  EXPECT_EQ(wc->find("type")->str, "windowed_counter");
  EXPECT_DOUBLE_EQ(wc->find("value")->num, 3.0);
  ASSERT_NE(wc->find("rate_per_sec"), nullptr);
}

TEST_F(ObsTest, RuntimePublishMetricsReportsPoolActivity) {
  EnableMetrics(true);
  runtime::ParallelFor(64, 8, [](std::int64_t, std::int64_t) {});
  runtime::Runtime::Get().PublishMetrics();
  Metrics& m = Metrics::Get();
  EXPECT_GE(m.gauge("runtime.threads")->value(), 1.0);
  EXPECT_GE(m.gauge("runtime.pool.parallel_fors")->value(), 1.0);
  EXPECT_GE(m.gauge("runtime.pool.effective_parallelism")->value(), 1.0);
  // Gauges snapshot, so publishing twice must not double-count.
  const double fors = m.gauge("runtime.pool.parallel_fors")->value();
  runtime::Runtime::Get().PublishMetrics();
  EXPECT_DOUBLE_EQ(m.gauge("runtime.pool.parallel_fors")->value(), fors);
}

}  // namespace
}  // namespace dlner::obs
