// Invariance suite (ctest label "invariance"): a trained pipeline's outputs
// must be bit-identical across thread counts, across a save -> load round
// trip, and across batch reorderings; training itself must be bit-identical
// across runs with the same seeds. See docs/TESTING.md.
#include <cstdint>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "runtime/runtime.h"
#include "support/corpus_gen.h"
#include "tensor/tensor.h"

namespace dlner {
namespace {

// The thread counts the acceptance bar names: serial, small, odd (so shards
// divide unevenly), and 0 = hardware concurrency.
constexpr int kThreadCounts[] = {1, 2, 7, 0};

core::TrainConfig TinyTrainConfig() {
  core::TrainConfig tc;
  tc.epochs = 3;
  tc.lr = 0.05;
  tc.optimizer = "adam";
  tc.shuffle_seed = 11;
  return tc;
}

std::vector<std::uint64_t> ParameterFingerprints(core::NerModel* model) {
  std::vector<std::uint64_t> prints;
  for (const Var& p : model->Parameters()) {
    prints.push_back(p->value.Fingerprint());
  }
  return prints;
}

// Results are compared for *bit* equality throughout this suite: the
// contract under test is "identical", not "close".
void ExpectSameExact(const eval::ExactResult& a, const eval::ExactResult& b) {
  EXPECT_EQ(a.micro.tp, b.micro.tp);
  EXPECT_EQ(a.micro.fp, b.micro.fp);
  EXPECT_EQ(a.micro.fn, b.micro.fn);
  EXPECT_EQ(a.macro_f1, b.macro_f1);
  ASSERT_EQ(a.per_type.size(), b.per_type.size());
  for (const auto& [type, prf] : a.per_type) {
    const auto it = b.per_type.find(type);
    ASSERT_NE(it, b.per_type.end()) << type;
    EXPECT_EQ(prf.tp, it->second.tp) << type;
    EXPECT_EQ(prf.fp, it->second.fp) << type;
    EXPECT_EQ(prf.fn, it->second.fn) << type;
  }
}

// One trained pipeline shared by the whole suite (training dominates the
// suite's runtime; the invariants are all inference-side).
class InvarianceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    runtime::Runtime::Get().SetThreads(1);
    split_ = new data::DataSplit(
        testsup::SmallSplit(data::Genre::kNews, 40, 12, 2024));
    auto config = testsup::TinyConfig("cnn", "crf", 9);
    pipeline_ = core::Pipeline::Train(config, TinyTrainConfig(),
                                      split_->train, &split_->dev,
                                      data::EntityTypesFor(data::Genre::kNews))
                    .release();
    ASSERT_NE(pipeline_, nullptr);
    reference_tags_ = pipeline_->TagCorpus(split_->test);
    reference_eval_ = pipeline_->Evaluate(split_->test);
  }

  static void TearDownTestSuite() {
    delete pipeline_;
    pipeline_ = nullptr;
    delete split_;
    split_ = nullptr;
    runtime::Runtime::Get().SetThreads(1);
  }

  void TearDown() override { runtime::Runtime::Get().SetThreads(1); }

  static data::DataSplit* split_;
  static core::Pipeline* pipeline_;
  static std::vector<std::vector<text::Span>> reference_tags_;
  static eval::ExactResult reference_eval_;
};

data::DataSplit* InvarianceTest::split_ = nullptr;
core::Pipeline* InvarianceTest::pipeline_ = nullptr;
std::vector<std::vector<text::Span>> InvarianceTest::reference_tags_;
eval::ExactResult InvarianceTest::reference_eval_;

TEST_F(InvarianceTest, PredictionsIdenticalAcrossThreadCounts) {
  for (const int threads : kThreadCounts) {
    runtime::Runtime::Get().SetThreads(threads);
    EXPECT_EQ(pipeline_->TagCorpus(split_->test), reference_tags_)
        << "threads=" << threads;
    ExpectSameExact(pipeline_->Evaluate(split_->test), reference_eval_);
    // Single-sentence path too (no sharding, but shares the kernels).
    EXPECT_EQ(pipeline_->Tag(split_->test.sentences[0].tokens),
              reference_tags_[0])
        << "threads=" << threads;
  }
}

TEST_F(InvarianceTest, SaveLoadRoundTripIsBitIdentical) {
  std::ostringstream out;
  ASSERT_TRUE(pipeline_->Save(out));
  std::istringstream in(out.str());
  const auto loaded = core::Pipeline::Load(in);
  ASSERT_NE(loaded, nullptr);

  EXPECT_EQ(ParameterFingerprints(loaded->model()),
            ParameterFingerprints(pipeline_->model()));
  EXPECT_EQ(loaded->TagCorpus(split_->test), reference_tags_);
  ExpectSameExact(loaded->Evaluate(split_->test), reference_eval_);

  // Round-tripping the loaded pipeline again yields the same bytes: the
  // format has a canonical encoding, nothing drifts per generation.
  std::ostringstream again;
  ASSERT_TRUE(loaded->Save(again));
  EXPECT_EQ(again.str(), out.str());
}

TEST_F(InvarianceTest, BatchOrderPermutationOnlyPermutesResults) {
  std::vector<int> perm(split_->test.sentences.size());
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(33);
  rng.Shuffle(&perm);

  text::Corpus permuted;
  for (const int i : perm) {
    permuted.sentences.push_back(split_->test.sentences[i]);
  }
  const auto tags = pipeline_->TagCorpus(permuted);
  ASSERT_EQ(tags.size(), reference_tags_.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(tags[i], reference_tags_[perm[i]]) << "sentence " << i;
  }
  // Exact-match counts are order-free, so evaluation must agree too.
  ExpectSameExact(pipeline_->Evaluate(permuted), reference_eval_);
}

TEST_F(InvarianceTest, PlannedAndEagerInferenceAgreeExactly) {
  // The suite's reference outputs were produced by the compiled-plan path
  // (it is the default); flipping the model to eager per-sentence inference
  // must reproduce them bit-for-bit.
  core::NerModel* model = pipeline_->model();
  ASSERT_TRUE(model->plan_inference());
  model->set_plan_inference(false);
  const auto eager_tags = pipeline_->TagCorpus(split_->test);
  const auto eager_eval = pipeline_->Evaluate(split_->test);
  model->set_plan_inference(true);
  EXPECT_EQ(eager_tags, reference_tags_);
  ExpectSameExact(eager_eval, reference_eval_);
}

TEST_F(InvarianceTest, PlannedPathIsThreadCountAndOrderInvariant) {
  // Same contracts as the suite-wide tests, pinned explicitly to the plan
  // path so they keep holding if the default ever flips to eager.
  core::NerModel* model = pipeline_->model();
  model->set_plan_inference(true);
  for (const int threads : kThreadCounts) {
    runtime::Runtime::Get().SetThreads(threads);
    EXPECT_EQ(pipeline_->TagCorpus(split_->test), reference_tags_)
        << "threads=" << threads;
  }
  runtime::Runtime::Get().SetThreads(1);
  std::vector<int> perm(split_->test.sentences.size());
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(57);
  rng.Shuffle(&perm);
  text::Corpus permuted;
  for (const int i : perm) {
    permuted.sentences.push_back(split_->test.sentences[i]);
  }
  const auto tags = pipeline_->TagCorpus(permuted);
  ASSERT_EQ(tags.size(), reference_tags_.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    EXPECT_EQ(tags[i], reference_tags_[perm[i]]) << "sentence " << i;
  }
}

// Satellite (b): two Train runs from identical seeds must agree on every
// parameter bit and every recorded metric.
TEST(SeededDeterminismTest, IdenticalSeedsYieldBitIdenticalTraining) {
  runtime::Runtime::Get().SetThreads(1);
  const auto split = testsup::SmallSplit(data::Genre::kNews, 25, 8, 501);
  const auto types = data::EntityTypesFor(data::Genre::kNews);
  const auto config = testsup::TinyConfig("mlp", "softmax", 13);
  core::TrainConfig tc = TinyTrainConfig();
  tc.epochs = 2;

  const auto a =
      core::Pipeline::Train(config, tc, split.train, &split.dev, types);
  const auto b =
      core::Pipeline::Train(config, tc, split.train, &split.dev, types);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  EXPECT_EQ(ParameterFingerprints(a->model()),
            ParameterFingerprints(b->model()));

  const core::TrainResult& ra = a->train_result();
  const core::TrainResult& rb = b->train_result();
  ASSERT_EQ(ra.history.size(), rb.history.size());
  for (size_t e = 0; e < ra.history.size(); ++e) {
    EXPECT_EQ(ra.history[e].train_loss, rb.history[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(ra.history[e].dev_f1, rb.history[e].dev_f1) << "epoch " << e;
  }
  EXPECT_EQ(ra.best_dev_f1, rb.best_dev_f1);
  EXPECT_EQ(ra.best_epoch, rb.best_epoch);
  EXPECT_EQ(ra.final_train_loss, rb.final_train_loss);

  EXPECT_EQ(a->TagCorpus(split.test), b->TagCorpus(split.test));
  ExpectSameExact(a->Evaluate(split.test), b->Evaluate(split.test));
}

}  // namespace
}  // namespace dlner
