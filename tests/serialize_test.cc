#include "tensor/serialize.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "data/gazetteer.h"
#include "embeddings/lm.h"
#include "tensor/nn.h"

namespace dlner {
namespace {

TEST(SerializeTest, TensorRoundTrip) {
  Tensor t({2, 3}, {1.5, -2.0, 0.0, 3.25, 4.0, -5.5});
  std::stringstream ss;
  SaveTensor(ss, t);
  Tensor back;
  ASSERT_TRUE(LoadTensor(ss, &back));
  ASSERT_TRUE(back.SameShape(t));
  for (int i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(back[i], t[i]);
}

TEST(SerializeTest, ParameterRoundTrip) {
  Rng rng(1);
  Linear lin(4, 3, &rng, "lin");
  std::vector<Var> params = lin.Parameters();
  std::stringstream ss;
  SaveParameters(ss, params);

  // Build a structurally identical module and restore into it.
  Rng rng2(999);
  Linear lin2(4, 3, &rng2, "lin");
  std::vector<Var> params2 = lin2.Parameters();
  ASSERT_TRUE(LoadParameters(ss, params2));
  for (size_t k = 0; k < params.size(); ++k) {
    for (int i = 0; i < params[k]->value.size(); ++i) {
      EXPECT_DOUBLE_EQ(params2[k]->value[i], params[k]->value[i]);
    }
  }
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(2);
  Linear a(4, 3, &rng, "lin");
  std::stringstream ss;
  SaveParameters(ss, a.Parameters());
  Linear b(4, 5, &rng, "lin");  // different out_dim
  EXPECT_FALSE(LoadParameters(ss, b.Parameters()));
}

TEST(SerializeTest, MissingNameFails) {
  Rng rng(3);
  Linear a(2, 2, &rng, "alpha");
  std::stringstream ss;
  SaveParameters(ss, a.Parameters());
  Linear b(2, 2, &rng, "beta");
  EXPECT_FALSE(LoadParameters(ss, b.Parameters()));
}

TEST(SerializeTest, ExtraSavedEntriesTolerated) {
  Rng rng(4);
  Linear a(2, 2, &rng, "a");
  Linear extra(2, 2, &rng, "extra");
  std::vector<Var> all = JoinParameters({&a, &extra});
  std::stringstream ss;
  SaveParameters(ss, all);
  // Restoring only `a` succeeds even though the stream holds more.
  Rng rng2(5);
  Linear a2(2, 2, &rng2, "a");
  EXPECT_TRUE(LoadParameters(ss, a2.Parameters()));
}

TEST(SerializeTest, GarbageInputFails) {
  std::stringstream ss;
  ss << "this is not a checkpoint";
  Rng rng(6);
  Linear a(2, 2, &rng, "a");
  EXPECT_FALSE(LoadParameters(ss, a.Parameters()));
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(7);
  Linear lin(3, 3, &rng, "lin");
  const std::string path = ::testing::TempDir() + "/dlner_params.bin";
  ASSERT_TRUE(SaveParametersToFile(path, lin.Parameters()));
  Rng rng2(8);
  Linear lin2(3, 3, &rng2, "lin");
  ASSERT_TRUE(LoadParametersFromFile(path, lin2.Parameters()));
  EXPECT_DOUBLE_EQ(lin2.Parameters()[0]->value[0],
                   lin.Parameters()[0]->value[0]);
}

TEST(SerializeTest, MissingFileFails) {
  Rng rng(9);
  Linear lin(2, 2, &rng, "lin");
  EXPECT_FALSE(LoadParametersFromFile("/nonexistent/dir/x.bin",
                                      lin.Parameters()));
}

// --- Corrupt-input hardening for the tensor reader ---

void PutU32(std::ostream& os, uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutI32(std::ostream& os, int32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

TEST(SerializeTest, LoadTensorRejectsHugeElementCount) {
  // A single dim claiming more elements than kMaxTensorElements must fail
  // before any allocation happens.
  std::stringstream ss;
  PutU32(ss, 1);                      // rank
  PutI32(ss, 1 << 30);                // 2^30 elements = 8 GB of doubles
  Tensor t;
  EXPECT_FALSE(LoadTensor(ss, &t));
}

TEST(SerializeTest, LoadTensorRejectsDimProductOverflow) {
  // Each dim fits in i32 but the product overflows any naive i32/i64 math;
  // the bounded running product must reject it.
  std::stringstream ss;
  PutU32(ss, 4);  // rank
  for (int i = 0; i < 4; ++i) PutI32(ss, 0x7fffffff);
  Tensor t;
  EXPECT_FALSE(LoadTensor(ss, &t));
}

TEST(SerializeTest, LoadTensorRejectsNegativeDim) {
  std::stringstream ss;
  PutU32(ss, 2);
  PutI32(ss, 3);
  PutI32(ss, -4);
  Tensor t;
  EXPECT_FALSE(LoadTensor(ss, &t));
}

TEST(SerializeTest, LoadParametersRejectsHugeCount) {
  std::stringstream ss;
  ss.write("DLNR", 4);
  PutU32(ss, 1);           // version
  PutU32(ss, 0xffffffff);  // absurd parameter count
  Rng rng(10);
  Linear lin(2, 2, &rng, "lin");
  EXPECT_FALSE(LoadParameters(ss, lin.Parameters()));
}

// --- Full-fidelity pipeline checkpoints for resource-backed models ---

core::NerConfig TinyConfig() {
  core::NerConfig config;
  config.word_dim = 10;
  config.hidden_dim = 8;
  config.input_dropout = 0.1;
  config.seed = 3;
  return config;
}

core::TrainConfig TinyTrain() {
  core::TrainConfig tc;
  tc.epochs = 2;
  tc.lr = 0.02;
  return tc;
}

text::Corpus TinyNews(int n, uint64_t seed) {
  data::GenOptions opts;
  opts.num_sentences = n;
  opts.seed = seed;
  return data::GenerateCorpus(data::Genre::kNews, opts);
}

std::vector<std::vector<std::string>> TokensOf(const text::Corpus& corpus) {
  std::vector<std::vector<std::string>> out;
  for (const auto& s : corpus.sentences) {
    if (!s.tokens.empty()) out.push_back(s.tokens);
  }
  return out;
}

// Trains a resource-backed pipeline, checkpoints it, reloads it, and
// demands a bit-identical Evaluate on held-out data.
void ExpectRoundTripIdentical(const core::NerConfig& config,
                              const core::Resources& res,
                              const std::string& tag) {
  text::Corpus train = TinyNews(20, 21);
  text::Corpus held_out = TinyNews(12, 22);
  auto pipeline =
      core::Pipeline::Train(config, TinyTrain(), train, nullptr,
                            data::EntityTypesFor(data::Genre::kNews), res);
  const std::string path = ::testing::TempDir() + "/dlner_rt_" + tag + ".bin";
  ASSERT_TRUE(pipeline->Save(path));
  auto loaded = core::Pipeline::Load(path);
  ASSERT_NE(loaded, nullptr);

  const eval::ExactResult before = pipeline->Evaluate(held_out);
  const eval::ExactResult after = loaded->Evaluate(held_out);
  EXPECT_EQ(before.micro.tp, after.micro.tp);
  EXPECT_EQ(before.micro.fp, after.micro.fp);
  EXPECT_EQ(before.micro.fn, after.micro.fn);
  EXPECT_DOUBLE_EQ(before.micro.f1(), after.micro.f1());
  EXPECT_DOUBLE_EQ(before.macro_f1, after.macro_f1);
  for (const auto& s : held_out.sentences) {
    if (!s.tokens.empty()) {
      EXPECT_EQ(pipeline->Tag(s.tokens), loaded->Tag(s.tokens));
    }
  }
}

TEST(PipelineCheckpointTest, GazetteerRoundTripIsBitIdentical) {
  text::Corpus train = TinyNews(20, 21);
  data::Gazetteer gaz = data::Gazetteer::FromCorpus(train, 0.8, 5);
  core::NerConfig config = TinyConfig();
  config.use_gazetteer = true;
  core::Resources res;
  res.gazetteer = &gaz;
  ExpectRoundTripIdentical(config, res, "gaz");
}

TEST(PipelineCheckpointTest, CharLmRoundTripIsBitIdentical) {
  embeddings::CharLm::Config lc;
  lc.epochs = 1;
  embeddings::CharLm lm(lc);
  lm.Train(TokensOf(TinyNews(8, 23)));
  core::NerConfig config = TinyConfig();
  config.use_char_lm = true;
  core::Resources res;
  res.char_lm = &lm;
  ExpectRoundTripIdentical(config, res, "charlm");
}

TEST(PipelineCheckpointTest, TokenLmRoundTripIsBitIdentical) {
  embeddings::TokenLm::Config lc;
  lc.epochs = 1;
  lc.min_count = 1;
  embeddings::TokenLm lm(lc);
  lm.Train(TokensOf(TinyNews(8, 24)));
  core::NerConfig config = TinyConfig();
  config.use_token_lm = true;
  core::Resources res;
  res.token_lm = &lm;
  ExpectRoundTripIdentical(config, res, "tokenlm");
}

TEST(PipelineCheckpointTest, AllResourcesTogetherRoundTrip) {
  text::Corpus train = TinyNews(20, 21);
  data::Gazetteer gaz = data::Gazetteer::FromCorpus(train, 1.0, 6);
  embeddings::CharLm::Config cc;
  cc.epochs = 1;
  embeddings::CharLm char_lm(cc);
  char_lm.Train(TokensOf(TinyNews(6, 25)));
  embeddings::TokenLm::Config tc;
  tc.epochs = 1;
  tc.min_count = 1;
  embeddings::TokenLm token_lm(tc);
  token_lm.Train(TokensOf(TinyNews(6, 26)));

  core::NerConfig config = TinyConfig();
  config.use_gazetteer = true;
  config.use_char_lm = true;
  config.use_token_lm = true;
  core::Resources res;
  res.gazetteer = &gaz;
  res.char_lm = &char_lm;
  res.token_lm = &token_lm;
  ExpectRoundTripIdentical(config, res, "all");
}

TEST(PipelineCheckpointTest, OldFormatVersionRejected) {
  // A v1 header must be rejected by the magic comparison, not misparsed.
  const std::string path = ::testing::TempDir() + "/dlner_v1.bin";
  {
    std::ofstream os(path, std::ios::binary);
    const char v1_magic[] = "DLNERPIPE1";
    os.write(v1_magic, sizeof(v1_magic));
    os.write("rest of an old checkpoint", 25);
  }
  EXPECT_EQ(core::Pipeline::Load(path), nullptr);
}

// Saves one resource-backed checkpoint and returns its bytes.
std::string CheckpointBytes() {
  text::Corpus train = TinyNews(15, 27);
  data::Gazetteer gaz = data::Gazetteer::FromCorpus(train, 1.0, 7);
  core::NerConfig config = TinyConfig();
  config.use_gazetteer = true;
  core::Resources res;
  res.gazetteer = &gaz;
  auto pipeline =
      core::Pipeline::Train(config, TinyTrain(), train, nullptr,
                            data::EntityTypesFor(data::Genre::kNews), res);
  const std::string path = ::testing::TempDir() + "/dlner_corrupt_src.bin";
  EXPECT_TRUE(pipeline->Save(path));
  std::ifstream is(path, std::ios::binary);
  std::stringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(PipelineCheckpointTest, TruncatedCheckpointsRejected) {
  const std::string bytes = CheckpointBytes();
  const std::string path = ::testing::TempDir() + "/dlner_truncated.bin";
  // Every prefix must fail by return value — no crash, no huge allocation.
  for (size_t frac = 0; frac < 16; ++frac) {
    const size_t len = bytes.size() * frac / 16;
    WriteBytes(path, bytes.substr(0, len));
    EXPECT_EQ(core::Pipeline::Load(path), nullptr) << "prefix " << len;
  }
  WriteBytes(path, bytes.substr(0, bytes.size() - 1));
  EXPECT_EQ(core::Pipeline::Load(path), nullptr);
}

TEST(PipelineCheckpointTest, BitFlippedHeadersDoNotCrash) {
  const std::string bytes = CheckpointBytes();
  const std::string path = ::testing::TempDir() + "/dlner_flipped.bin";
  // Flip every bit of the header region (magic, config, counts, lengths)
  // one byte at a time. A flip may survive as a benign value change; what
  // is forbidden is a crash, a CHECK-abort, or an unbounded allocation.
  const size_t header = std::min<size_t>(bytes.size(), 256);
  for (size_t i = 0; i < header; ++i) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0xff);
    WriteBytes(path, corrupted);
    auto loaded = core::Pipeline::Load(path);  // either outcome is fine
    (void)loaded;
  }
  SUCCEED();
}

}  // namespace
}  // namespace dlner
