#include "tensor/serialize.h"

#include <sstream>

#include <gtest/gtest.h>

#include "tensor/nn.h"

namespace dlner {
namespace {

TEST(SerializeTest, TensorRoundTrip) {
  Tensor t({2, 3}, {1.5, -2.0, 0.0, 3.25, 4.0, -5.5});
  std::stringstream ss;
  SaveTensor(ss, t);
  Tensor back;
  ASSERT_TRUE(LoadTensor(ss, &back));
  ASSERT_TRUE(back.SameShape(t));
  for (int i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(back[i], t[i]);
}

TEST(SerializeTest, ParameterRoundTrip) {
  Rng rng(1);
  Linear lin(4, 3, &rng, "lin");
  std::vector<Var> params = lin.Parameters();
  std::stringstream ss;
  SaveParameters(ss, params);

  // Build a structurally identical module and restore into it.
  Rng rng2(999);
  Linear lin2(4, 3, &rng2, "lin");
  std::vector<Var> params2 = lin2.Parameters();
  ASSERT_TRUE(LoadParameters(ss, params2));
  for (size_t k = 0; k < params.size(); ++k) {
    for (int i = 0; i < params[k]->value.size(); ++i) {
      EXPECT_DOUBLE_EQ(params2[k]->value[i], params[k]->value[i]);
    }
  }
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(2);
  Linear a(4, 3, &rng, "lin");
  std::stringstream ss;
  SaveParameters(ss, a.Parameters());
  Linear b(4, 5, &rng, "lin");  // different out_dim
  EXPECT_FALSE(LoadParameters(ss, b.Parameters()));
}

TEST(SerializeTest, MissingNameFails) {
  Rng rng(3);
  Linear a(2, 2, &rng, "alpha");
  std::stringstream ss;
  SaveParameters(ss, a.Parameters());
  Linear b(2, 2, &rng, "beta");
  EXPECT_FALSE(LoadParameters(ss, b.Parameters()));
}

TEST(SerializeTest, ExtraSavedEntriesTolerated) {
  Rng rng(4);
  Linear a(2, 2, &rng, "a");
  Linear extra(2, 2, &rng, "extra");
  std::vector<Var> all = JoinParameters({&a, &extra});
  std::stringstream ss;
  SaveParameters(ss, all);
  // Restoring only `a` succeeds even though the stream holds more.
  Rng rng2(5);
  Linear a2(2, 2, &rng2, "a");
  EXPECT_TRUE(LoadParameters(ss, a2.Parameters()));
}

TEST(SerializeTest, GarbageInputFails) {
  std::stringstream ss;
  ss << "this is not a checkpoint";
  Rng rng(6);
  Linear a(2, 2, &rng, "a");
  EXPECT_FALSE(LoadParameters(ss, a.Parameters()));
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(7);
  Linear lin(3, 3, &rng, "lin");
  const std::string path = ::testing::TempDir() + "/dlner_params.bin";
  ASSERT_TRUE(SaveParametersToFile(path, lin.Parameters()));
  Rng rng2(8);
  Linear lin2(3, 3, &rng2, "lin");
  ASSERT_TRUE(LoadParametersFromFile(path, lin2.Parameters()));
  EXPECT_DOUBLE_EQ(lin2.Parameters()[0]->value[0],
                   lin.Parameters()[0]->value[0]);
}

TEST(SerializeTest, MissingFileFails) {
  Rng rng(9);
  Linear lin(2, 2, &rng, "lin");
  EXPECT_FALSE(LoadParametersFromFile("/nonexistent/dir/x.bin",
                                      lin.Parameters()));
}

}  // namespace
}  // namespace dlner
