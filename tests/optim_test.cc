#include "tensor/optim.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/nn.h"
#include "tensor/ops.h"

namespace dlner {
namespace {

// Quadratic bowl: loss = sum((x - target)^2). All optimizers must converge.
Float RunToConvergence(Optimizer* opt, const Var& x, const Tensor& target,
                       int steps) {
  Float loss_val = 0.0;
  for (int s = 0; s < steps; ++s) {
    opt->ZeroGrad();
    Var t = Constant(target);
    Var loss = Sum(Mul(Sub(x, t), Sub(x, t)));
    Backward(loss);
    opt->Step();
    loss_val = loss->value[0];
  }
  return loss_val;
}

class OptimizerTest : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerTest, ConvergesOnQuadratic) {
  Var x = Parameter(Tensor::FromVector({5.0, -3.0, 0.5}), "x");
  Tensor target = Tensor::FromVector({1.0, 2.0, -1.0});
  // Adagrad's effective step decays as 1/sqrt(sum g^2); it needs a larger
  // base rate to cover the same distance in a fixed step budget.
  const Float lr = GetParam() == "adagrad" ? 0.5 : 0.05;
  auto opt = MakeOptimizer(GetParam(), {x}, lr);
  Float final_loss = RunToConvergence(opt.get(), x, target, 500);
  EXPECT_LT(final_loss, 1e-3) << GetParam();
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(x->value[i], target[i], 0.05);
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerTest,
                         ::testing::Values("sgd", "adagrad", "adam"),
                         [](const auto& info) { return info.param; });

TEST(SgdTest, PlainStepIsExact) {
  Var x = Parameter(Tensor::FromVector({2.0}), "x");
  Sgd sgd({x}, 0.1, /*momentum=*/0.0);
  sgd.ZeroGrad();
  Backward(Sum(Mul(x, x)));  // grad = 2x = 4
  sgd.Step();
  EXPECT_NEAR(x->value[0], 2.0 - 0.1 * 4.0, 1e-12);
}

TEST(SgdTest, MomentumAccumulates) {
  Var x = Parameter(Tensor::FromVector({0.0}), "x");
  Sgd sgd({x}, 0.1, /*momentum=*/0.9);
  // Constant gradient of 1.0 applied twice:
  // v1 = -0.1, x1 = -0.1; v2 = 0.9*(-0.1) - 0.1 = -0.19, x2 = -0.29.
  for (int i = 0; i < 2; ++i) {
    sgd.ZeroGrad();
    x->grad[0] = 1.0;
    sgd.Step();
  }
  EXPECT_NEAR(x->value[0], -0.29, 1e-12);
}

TEST(AdamTest, BiasCorrectionMakesFirstStepLrSized) {
  Var x = Parameter(Tensor::FromVector({1.0}), "x");
  Adam adam({x}, 0.01);
  adam.ZeroGrad();
  x->grad[0] = 0.5;
  adam.Step();
  // With bias correction, the first step is ~lr * sign(grad).
  EXPECT_NEAR(x->value[0], 1.0 - 0.01, 1e-6);
}

TEST(ClipTest, ClipsToMaxNorm) {
  Var x = Parameter(Tensor::FromVector({3.0, 4.0}), "x");
  Sgd sgd({x}, 1.0);
  sgd.ZeroGrad();
  x->grad[0] = 3.0;
  x->grad[1] = 4.0;  // norm 5
  Float pre = sgd.ClipGradNorm(1.0);
  EXPECT_DOUBLE_EQ(pre, 5.0);
  EXPECT_NEAR(std::hypot(x->grad[0], x->grad[1]), 1.0, 1e-12);
}

TEST(ClipTest, NoOpBelowThreshold) {
  Var x = Parameter(Tensor::FromVector({0.3}), "x");
  Sgd sgd({x}, 1.0);
  sgd.ZeroGrad();
  x->grad[0] = 0.3;
  sgd.ClipGradNorm(1.0);
  EXPECT_DOUBLE_EQ(x->grad[0], 0.3);
}

TEST(OptimDeathTest, UnknownKindAborts) {
  Var x = Parameter(Tensor::FromVector({1.0}), "x");
  EXPECT_DEATH(MakeOptimizer("lbfgs", {x}, 0.1), "unknown optimizer");
}

}  // namespace
}  // namespace dlner
