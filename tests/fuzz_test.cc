// Fuzz suite (ctest label "fuzz"): deterministic structure-aware byte
// mutation of valid checkpoints and CoNLL files, driven through the binary
// readers. The readers' contract is total: any input either parses into a
// usable object or is rejected (nullptr / false) — never a crash, hang, or
// out-of-bounds access. Run under the asan preset for the full guarantee.
// See docs/TESTING.md; the same corpus logic backs the optional libFuzzer
// targets in tests/fuzz/.
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "runtime/runtime.h"
#include "support/corpus_gen.h"
#include "support/mutate.h"
#include "text/conll.h"

namespace dlner {
namespace {

// Per-base-input mutation counts; the two checkpoint bases plus the CoNLL
// base put the suite above the 5000-iteration acceptance bar.
constexpr int kCheckpointIters = 2600;
constexpr int kConllIters = 2600;

std::string CheckpointBytes(const std::string& encoder,
                            const std::string& decoder, uint64_t seed) {
  runtime::Runtime::Get().SetThreads(1);
  const text::Corpus train = testsup::SmallCorpus("conll-like", 6, seed);
  core::TrainConfig tc;
  tc.epochs = 1;
  const auto pipeline =
      core::Pipeline::Train(testsup::TinyConfig(encoder, decoder, seed), tc,
                            train, nullptr, testsup::EntityTypesOf(train));
  std::ostringstream os;
  EXPECT_TRUE(pipeline->Save(os));
  return os.str();
}

TEST(CheckpointFuzzTest, MutatedCheckpointsNeverCrashTheLoader) {
  // Two architectures so splices cross checkpoints with different block
  // layouts (different decoder parameter sets, tag set vs none).
  const std::string base = CheckpointBytes("mlp", "crf", 41);
  const std::string donor = CheckpointBytes("cnn", "semicrf", 43);
  const std::vector<std::string> probe = {"Alice", "visited", "Paris"};

  Rng rng(0xf0220);
  int accepted = 0;
  for (int iter = 0; iter < kCheckpointIters; ++iter) {
    const bool from_base = rng.Bernoulli(0.5);
    const std::string bytes = testsup::MutateBytes(from_base ? base : donor,
                                          from_base ? donor : base, &rng);
    std::istringstream is(bytes);
    const auto loaded = core::Pipeline::Load(is);
    if (loaded != nullptr) {
      // A checkpoint the loader accepts must yield a *usable* pipeline:
      // tagging must produce structurally valid spans, not UB.
      ++accepted;
      const auto spans = loaded->Tag(probe);
      EXPECT_TRUE(text::SpansAreValid(spans, static_cast<int>(probe.size())))
          << "iteration " << iter;
    }
  }
  // Mutations that only touch parameter bytes still load; wholesale
  // acceptance would mean the mutator (or validation) is broken.
  EXPECT_LT(accepted, kCheckpointIters / 2);
  RecordProperty("accepted", accepted);
}

TEST(CheckpointFuzzTest, EveryStrictPrefixIsRejected) {
  const std::string base = CheckpointBytes("mlp", "softmax", 47);
  for (size_t len = 0; len < base.size(); ++len) {
    std::istringstream is(base.substr(0, len));
    EXPECT_EQ(core::Pipeline::Load(is), nullptr) << "prefix length " << len;
  }
}

TEST(ConllFuzzTest, MutatedConllFilesNeverCrashTheReader) {
  const text::Corpus corpus = testsup::SmallCorpus("conll-like", 8, 53);
  text::TagSet tags(testsup::EntityTypesOf(corpus), text::TagScheme::kBio);
  std::ostringstream base_os, donor_os;
  text::WriteConll(base_os, corpus, tags);
  const text::Corpus donor_corpus =
      testsup::SmallCorpus("ontonotes-like", 5, 59);
  text::TagSet donor_tags(testsup::EntityTypesOf(donor_corpus),
                          text::TagScheme::kBioes);
  text::WriteConll(donor_os, donor_corpus, donor_tags);
  const std::string base = base_os.str();
  const std::string donor = donor_os.str();

  Rng rng(0xc0411u);
  int accepted = 0;
  for (int iter = 0; iter < kConllIters; ++iter) {
    const std::string bytes = testsup::MutateBytes(base, donor, &rng);
    std::istringstream is(bytes);
    text::Corpus out;
    if (text::ReadConll(is, &out)) {
      ++accepted;
      for (const text::Sentence& s : out.sentences) {
        ASSERT_TRUE(text::SpansAreValid(s.spans, s.size()))
            << "iteration " << iter;
      }
    }
  }
  // The text format is lenient by design, so most mutants still parse; the
  // guarantee under test is validity of whatever comes back.
  EXPECT_GT(accepted, 0);
  RecordProperty("accepted", accepted);
}

}  // namespace
}  // namespace dlner
