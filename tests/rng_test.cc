#include "tensor/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dlner {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) {
    int v = rng.UniformInt(0, 4);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 4);
    seen[v]++;
  }
  for (int c : seen) EXPECT_GT(c, 800);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(15);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<bool> present(10, false);
  for (int x : v) present[x] = true;
  for (bool p : present) EXPECT_TRUE(p);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.Categorical(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.04);
}

TEST(RngTest, ForkIndependent) {
  Rng a(21);
  Rng b = a.Fork();
  // The fork diverges from the parent stream.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngDeathTest, BadCategoricalAborts) {
  Rng rng(23);
  std::vector<double> none;
  EXPECT_DEATH(rng.Categorical(none), "DLNER_CHECK");
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DEATH(rng.Categorical(zeros), "DLNER_CHECK");
}

}  // namespace
}  // namespace dlner
