#include "tensor/nn.h"

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace dlner {
namespace {

Var RandomInput(std::vector<int> shape, Rng* rng) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.size(); ++i) t[i] = rng->Uniform(-1.0, 1.0);
  return Parameter(std::move(t));
}

TEST(LinearTest, ShapesAndParameterCount) {
  Rng rng(1);
  Linear lin(5, 3, &rng);
  EXPECT_EQ(lin.ParameterCount(), 5 * 3 + 3);
  Var x = Constant(Tensor({4, 5}));
  Var y = lin.Apply(x);
  EXPECT_EQ(y->value.rows(), 4);
  EXPECT_EQ(y->value.cols(), 3);
}

TEST(LinearTest, ApplyVecMatchesApply) {
  Rng rng(2);
  Linear lin(4, 2, &rng);
  Rng data_rng(3);
  Var v = RandomInput({4}, &data_rng);
  Var via_vec = lin.ApplyVec(v);
  Var via_mat = Row(lin.Apply(AsRow(v)), 0);
  for (int i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(via_vec->value[i], via_mat->value[i]);
  }
}

TEST(LinearTest, GradCheck) {
  Rng rng(4);
  Linear lin(3, 2, &rng);
  Rng data_rng(5);
  Var x = RandomInput({4, 3}, &data_rng);
  std::vector<Var> inputs = lin.Parameters();
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Sum(Tanh(lin.Apply(x))); }, inputs),
            1e-6);
}

TEST(EmbeddingTest, LookupShapeAndGradScatter) {
  Rng rng(6);
  Embedding emb(10, 4, &rng);
  Var e = emb.Lookup({1, 3, 1});
  EXPECT_EQ(e->value.rows(), 3);
  EXPECT_EQ(e->value.cols(), 4);
  // Row 1 appears twice -> its gradient doubles.
  Backward(Sum(e));
  Var table = emb.Parameters()[0];
  EXPECT_DOUBLE_EQ(table->grad.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(table->grad.at(3, 0), 1.0);
  EXPECT_DOUBLE_EQ(table->grad.at(0, 0), 0.0);
}

TEST(EmbeddingTest, SetRowAndFreeze) {
  Rng rng(7);
  Embedding emb(5, 3, &rng);
  emb.SetRow(2, {9.0, 8.0, 7.0});
  Var row = emb.LookupOne(2);
  EXPECT_DOUBLE_EQ(row->value[0], 9.0);
  EXPECT_EQ(emb.Parameters().size(), 1u);
  emb.set_trainable(false);
  // The table stays visible for serialization but is marked frozen.
  ASSERT_EQ(emb.Parameters().size(), 1u);
  EXPECT_FALSE(emb.Parameters()[0]->requires_grad);
  // Frozen lookups do not propagate gradients.
  Var e = emb.Lookup({0, 1});
  EXPECT_FALSE(e->requires_grad);
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln(4);
  Var x = Constant(Tensor({2, 4}, {1.0, 2.0, 3.0, 4.0, -5.0, 0.0, 5.0, 10.0}));
  Var y = ln.Apply(x);
  for (int r = 0; r < 2; ++r) {
    Float mean = 0.0;
    for (int c = 0; c < 4; ++c) mean += y->value.at(r, c);
    mean /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-9);
    Float var = 0.0;
    for (int c = 0; c < 4; ++c) {
      var += (y->value.at(r, c) - mean) * (y->value.at(r, c) - mean);
    }
    var /= 4;
    EXPECT_NEAR(var, 1.0, 1e-4);
  }
}

TEST(LayerNormTest, GradCheck) {
  LayerNorm ln(5);
  Rng rng(8);
  Var x = RandomInput({3, 5}, &rng);
  // Perturb gain/bias away from identity for a stronger test.
  std::vector<Var> params = ln.Parameters();
  for (const Var& p : params) {
    for (int i = 0; i < p->value.size(); ++i) {
      p->value[i] += rng.Uniform(-0.3, 0.3);
    }
  }
  std::vector<Var> inputs = params;
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Sum(Tanh(ln.Apply(x))); }, inputs),
            1e-5);
}

TEST(Conv1dTest, SameLengthOutput) {
  Rng rng(9);
  Conv1d conv(3, 5, 3, 1, &rng);
  Var x = Constant(Tensor({7, 3}));
  Var y = conv.Apply(x);
  EXPECT_EQ(y->value.rows(), 7);
  EXPECT_EQ(y->value.cols(), 5);
}

TEST(Conv1dTest, GradCheck) {
  Rng rng(10);
  Conv1d conv(2, 3, 3, 1, &rng);
  Rng data_rng(11);
  Var x = RandomInput({5, 2}, &data_rng);
  std::vector<Var> inputs = conv.Parameters();
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Sum(Tanh(conv.Apply(x))); }, inputs),
            1e-6);
}

TEST(Conv1dTest, DilatedGradCheck) {
  Rng rng(12);
  Conv1d conv(2, 2, 3, 3, &rng);
  Rng data_rng(13);
  Var x = RandomInput({9, 2}, &data_rng);
  std::vector<Var> inputs = conv.Parameters();
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Sum(Tanh(conv.Apply(x))); }, inputs),
            1e-6);
}

TEST(Conv1dTest, UnfoldZeroPadsBoundaries) {
  Var x = Constant(Tensor({2, 1}, {1.0, 2.0}));
  Var u = Unfold(x, 3, 1);
  // Row 0: [pad, x0, x1] = [0, 1, 2]; Row 1: [x0, x1, pad] = [1, 2, 0].
  EXPECT_DOUBLE_EQ(u->value.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(u->value.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(u->value.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(u->value.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(u->value.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(u->value.at(1, 2), 0.0);
}

TEST(HighwayTest, GradCheckAndShape) {
  Rng rng(14);
  Highway hw(4, &rng);
  Rng data_rng(15);
  Var x = RandomInput({3, 4}, &data_rng);
  std::vector<Var> inputs = hw.Parameters();
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Sum(Tanh(hw.Apply(x))); }, inputs),
            1e-6);
  EXPECT_EQ(hw.Apply(x)->value.rows(), 3);
  EXPECT_EQ(hw.Apply(x)->value.cols(), 4);
}

TEST(ModuleTest, JoinParametersSkipsNull) {
  Rng rng(16);
  Linear a(2, 2, &rng), b(2, 2, &rng);
  auto all = JoinParameters({&a, nullptr, &b});
  EXPECT_EQ(all.size(), 4u);
}

TEST(InitTest, GlorotScale) {
  Rng rng(17);
  Tensor t = GlorotMatrix(20, 30, &rng);
  const Float bound = std::sqrt(6.0 / 50.0);
  for (int i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::fabs(t[i]), bound);
  }
}

}  // namespace
}  // namespace dlner
