#include <atomic>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/model.h"
#include "data/dataset.h"
#include "runtime/runtime.h"
#include "runtime/thread_pool.h"

namespace dlner::runtime {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksAndDrainsOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.workers(), 3);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor must finish every queued task before joining
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersIsValidAndRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, 3, [&counter](std::int64_t begin, std::int64_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  for (const auto& [total, grain] : std::vector<std::pair<int, int>>{
           {0, 1}, {1, 1}, {1, 8}, {7, 3}, {64, 8}, {65, 8}, {1000, 1}}) {
    std::vector<std::atomic<int>> hits(total);
    pool.ParallelFor(total, grain,
                     [&hits](std::int64_t begin, std::int64_t end) {
                       for (std::int64_t i = begin; i < end; ++i) {
                         hits[i].fetch_add(1);
                       }
                     });
    for (int i = 0; i < total; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "total=" << total << " grain=" << grain
                                   << " index=" << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForChunkBoundariesAreFixed) {
  // The deterministic-merge strategy in NerModel::Evaluate depends on chunk
  // c covering exactly [c*grain, min((c+1)*grain, total)).
  ThreadPool pool(4);
  const std::int64_t total = 53;
  const std::int64_t grain = 8;
  std::mutex mu;
  std::set<std::pair<std::int64_t, std::int64_t>> chunks;
  pool.ParallelFor(total, grain,
                   [&](std::int64_t begin, std::int64_t end) {
                     std::lock_guard<std::mutex> lock(mu);
                     chunks.insert({begin, end});
                   });
  std::set<std::pair<std::int64_t, std::int64_t>> expected;
  for (std::int64_t b = 0; b < total; b += grain) {
    expected.insert({b, std::min(b + grain, total)});
  }
  EXPECT_EQ(chunks, expected);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(100, 4,
                       [](std::int64_t begin, std::int64_t /*end*/) {
                         if (begin >= 48) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> counter{0};
  pool.ParallelFor(10, 2, [&counter](std::int64_t begin, std::int64_t end) {
    counter.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.ParallelFor(8, 1, [&](std::int64_t /*begin*/, std::int64_t /*end*/) {
    pool.ParallelFor(8, 1,
                     [&counter](std::int64_t begin, std::int64_t end) {
                       counter.fetch_add(static_cast<int>(end - begin));
                     });
  });
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, NumThreadsCountsCaller) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 4);
  ThreadPool inline_pool(0);
  EXPECT_EQ(inline_pool.num_threads(), 1);
}

TEST(ThreadPoolTest, StatsCountSubmittedJobs) {
  ThreadPool pool(2);
  for (int i = 0; i < 5; ++i) {
    pool.Submit([] {});
  }
  // Submitted jobs drain asynchronously; poll until the workers catch up.
  PoolStats stats = pool.stats();
  while (stats.jobs_executed < 5) {
    std::this_thread::yield();
    stats = pool.stats();
  }
  EXPECT_EQ(stats.jobs_executed, 5);
  EXPECT_EQ(stats.parallel_fors, 0);
}

TEST(ThreadPoolTest, StatsTrackParallelForChunks) {
  ThreadPool pool(2);
  // 10 indices at grain 3 -> chunks [0,3) [3,6) [6,9) [9,10).
  pool.ParallelFor(10, 3, [](std::int64_t, std::int64_t) {});
  pool.ParallelFor(4, 4, [](std::int64_t, std::int64_t) {});  // single chunk
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.parallel_fors, 2);
  // Every chunk ran exactly once, attributed to caller or helper.
  EXPECT_EQ(stats.chunks_total(), 4 + 1);
  EXPECT_GE(stats.chunks_caller, 1);  // the single-chunk call at minimum
}

TEST(ThreadPoolTest, ZeroWorkerStatsAttributeEverythingToCaller) {
  ThreadPool pool(0);
  pool.ParallelFor(12, 2, [](std::int64_t, std::int64_t) {});
  const PoolStats stats = pool.stats();
  EXPECT_EQ(stats.chunks_caller, 6);
  EXPECT_EQ(stats.chunks_helper, 0);
  EXPECT_EQ(stats.jobs_executed, 0);
}

TEST(RuntimeTest, SetThreadsControlsPoolSize) {
  Runtime& rt = Runtime::Get();
  rt.SetThreads(3);
  EXPECT_EQ(rt.threads(), 3);
  // N logical threads = the caller plus N-1 pool workers.
  EXPECT_EQ(rt.pool().workers(), 2);
  rt.SetThreads(1);
  EXPECT_EQ(rt.threads(), 1);
  EXPECT_EQ(rt.pool().workers(), 0);
}

// --- Deterministic parallel evaluation ------------------------------------

bool SameResult(const eval::ExactResult& a, const eval::ExactResult& b) {
  if (a.micro.tp != b.micro.tp || a.micro.fp != b.micro.fp ||
      a.micro.fn != b.micro.fn) {
    return false;
  }
  if (a.macro_f1 != b.macro_f1) return false;  // bit-identical, not approx
  if (a.per_type.size() != b.per_type.size()) return false;
  for (const auto& [type, prf] : a.per_type) {
    auto it = b.per_type.find(type);
    if (it == b.per_type.end()) return false;
    if (prf.tp != it->second.tp || prf.fp != it->second.fp ||
        prf.fn != it->second.fn) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> EntityTypesOf(const text::Corpus& corpus) {
  std::set<std::string> types;
  for (const auto& s : corpus.sentences) {
    for (const auto& sp : s.spans) types.insert(sp.type);
  }
  return {types.begin(), types.end()};
}

TEST(ParallelEvaluateTest, BitIdenticalAcrossThreadCounts) {
  const text::Corpus corpus = data::MakeDataset("conll-like", 200, 7);
  core::NerConfig config;
  config.word_dim = 12;
  config.hidden_dim = 10;
  config.seed = 11;
  core::NerModel model(config, corpus, EntityTypesOf(corpus));

  // Reference: a manual serial pass over the corpus.
  eval::ExactMatchEvaluator serial;
  for (const auto& s : corpus.sentences) {
    serial.Add(s.spans, model.Predict(s.tokens));
  }
  const eval::ExactResult reference = serial.Result();

  for (const int threads : {1, 2, 8}) {
    Runtime::Get().SetThreads(threads);
    const eval::ExactResult parallel = model.Evaluate(corpus);
    EXPECT_TRUE(SameResult(reference, parallel))
        << "threads=" << threads << ": micro tp/fp/fn "
        << parallel.micro.tp << "/" << parallel.micro.fp << "/"
        << parallel.micro.fn << " vs " << reference.micro.tp << "/"
        << reference.micro.fp << "/" << reference.micro.fn;
  }
  Runtime::Get().SetThreads(1);
}

TEST(ParallelEvaluateTest, PredictCorpusMatchesSequentialPredict) {
  const text::Corpus corpus = data::MakeDataset("wnut-like", 60, 3);
  core::NerConfig config;
  config.word_dim = 12;
  config.hidden_dim = 10;
  config.encoder = "cnn";
  config.decoder = "softmax";
  config.seed = 23;
  core::NerModel model(config, corpus, EntityTypesOf(corpus));

  Runtime::Get().SetThreads(4);
  const auto parallel = model.PredictCorpus(corpus);
  Runtime::Get().SetThreads(1);

  ASSERT_EQ(static_cast<int>(parallel.size()), corpus.size());
  for (int i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(parallel[i], model.Predict(corpus.sentences[i].tokens))
        << "sentence " << i;
  }
}

}  // namespace
}  // namespace dlner::runtime
