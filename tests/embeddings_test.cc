#include <memory>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "embeddings/char_features.h"
#include "embeddings/features.h"
#include "embeddings/lm.h"
#include "embeddings/sgns.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace dlner::embeddings {
namespace {

text::Corpus SmallCorpus() {
  data::GenOptions opts;
  opts.num_sentences = 40;
  opts.seed = 3;
  return data::GenerateCorpus(data::Genre::kNews, opts);
}

TEST(WordShapeTest, CapturesCasePatterns) {
  auto f = WordShapeFeature::ShapeOf("NATO");
  EXPECT_EQ(f[0], 1.0);  // all caps
  EXPECT_EQ(f[1], 1.0);  // initial cap
  f = WordShapeFeature::ShapeOf("London");
  EXPECT_EQ(f[0], 0.0);
  EXPECT_EQ(f[1], 1.0);
  EXPECT_EQ(f[3], 0.0);
  f = WordShapeFeature::ShapeOf("hello");
  EXPECT_EQ(f[1], 0.0);
  EXPECT_EQ(f[3], 1.0);  // all lower
  f = WordShapeFeature::ShapeOf("3.5");
  EXPECT_EQ(f[4], 1.0);  // has digit
  EXPECT_EQ(f[6], 1.0);  // has punct
  f = WordShapeFeature::ShapeOf("42");
  EXPECT_EQ(f[5], 1.0);  // all digit
  f = WordShapeFeature::ShapeOf("iPhone");
  EXPECT_EQ(f[2], 1.0);  // inner cap
}

TEST(WordShapeTest, ForwardShape) {
  WordShapeFeature feat;
  Var out = feat.Forward({"Paris", "is", "big"}, false);
  EXPECT_EQ(out->value.rows(), 3);
  EXPECT_EQ(out->value.cols(), WordShapeFeature::kDim);
  EXPECT_FALSE(out->requires_grad);
}

TEST(WordEmbeddingTest, LookupAndOov) {
  text::Corpus corpus = SmallCorpus();
  text::Vocabulary vocab = text::Vocabulary::FromCorpus(corpus);
  Rng rng(1);
  WordEmbeddingFeature feat(&vocab, 16, &rng);
  Var out = feat.Forward({"zzz_unseen_zzz", corpus.sentences[0].tokens[0]},
                         true);
  EXPECT_EQ(out->value.rows(), 2);
  EXPECT_EQ(out->value.cols(), 16);
  // OOV row equals the UNK row of the table.
  Var unk = feat.embedding()->LookupOne(text::Vocabulary::kUnkId);
  for (int j = 0; j < 16; ++j) {
    EXPECT_DOUBLE_EQ(out->value.at(0, j), unk->value[j]);
  }
}

TEST(CharCnnTest, ShapeAndGradient) {
  text::Corpus corpus = SmallCorpus();
  text::Vocabulary chars = text::Vocabulary::CharsFromCorpus(corpus);
  Rng rng(2);
  CharCnnFeature feat(&chars, 8, 12, &rng);
  Var out = feat.Forward({"London", "calling"}, true);
  EXPECT_EQ(out->value.rows(), 2);
  EXPECT_EQ(out->value.cols(), 12);
  EXPECT_TRUE(out->requires_grad);
  // Gradients flow to parameters.
  Backward(Sum(out));
  bool any_nonzero = false;
  for (const Var& p : feat.Parameters()) {
    for (int i = 0; i < p->grad.size(); ++i) {
      if (p->grad[i] != 0.0) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(CharCnnTest, HandlesUnseenCharacters) {
  text::Corpus corpus = SmallCorpus();
  text::Vocabulary chars = text::Vocabulary::CharsFromCorpus(corpus);
  Rng rng(3);
  CharCnnFeature feat(&chars, 6, 8, &rng);
  Var out = feat.Forward({"\x7f\x7f"}, false);  // chars surely unseen
  EXPECT_EQ(out->value.rows(), 1);
}

TEST(CharRnnTest, ShapeAndDistinctWords) {
  text::Corpus corpus = SmallCorpus();
  text::Vocabulary chars = text::Vocabulary::CharsFromCorpus(corpus);
  Rng rng(4);
  CharRnnFeature feat(&chars, 8, 10, &rng);
  Var out = feat.Forward({"abc", "abd"}, false);
  EXPECT_EQ(out->value.rows(), 2);
  EXPECT_EQ(out->value.cols(), 20);
  // Different words get different representations.
  bool differs = false;
  for (int j = 0; j < 20; ++j) {
    if (out->value.at(0, j) != out->value.at(1, j)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(GazetteerFeatureTest, DimsFollowTypes) {
  data::Gazetteer gaz;
  gaz.AddEntry("PER", {"Ann"});
  gaz.AddEntry("LOC", {"Rome"});
  GazetteerFeature feat(&gaz);
  EXPECT_EQ(feat.dim(), 2);
  Var out = feat.Forward({"Ann", "went", "to", "Rome"}, false);
  EXPECT_EQ(out->value.at(0, 0), 1.0);
  EXPECT_EQ(out->value.at(3, 1), 1.0);
  EXPECT_EQ(out->value.at(1, 0), 0.0);
}

TEST(ComposedTest, ConcatenatesDims) {
  text::Corpus corpus = SmallCorpus();
  text::Vocabulary vocab = text::Vocabulary::FromCorpus(corpus);
  text::Vocabulary chars = text::Vocabulary::CharsFromCorpus(corpus);
  Rng rng(5);
  std::vector<std::unique_ptr<TokenFeature>> feats;
  feats.push_back(std::make_unique<WordEmbeddingFeature>(&vocab, 16, &rng));
  feats.push_back(std::make_unique<CharCnnFeature>(&chars, 8, 12, &rng));
  feats.push_back(std::make_unique<WordShapeFeature>());
  ComposedRepresentation rep(std::move(feats), 0.0, &rng);
  EXPECT_EQ(rep.dim(), 16 + 12 + 8);
  Var out = rep.Forward({"London", "fell"}, true);
  EXPECT_EQ(out->value.cols(), rep.dim());
  EXPECT_GT(rep.Parameters().size(), 0u);
}

// --- SGNS ---

TEST(SgnsTest, LearnsDistributionalSimilarity) {
  // Two interchangeable word groups: {cat, dog} appear in one context,
  // {paris, london} in another. SGNS must place in-group words closer.
  std::vector<std::vector<std::string>> sents;
  for (int i = 0; i < 300; ++i) {
    const char* animal = (i % 2 == 0) ? "cat" : "dog";
    const char* city = (i % 2 == 0) ? "paris" : "london";
    sents.push_back({"the", animal, "chased", "the", "ball"});
    sents.push_back({"we", "visited", city, "yesterday"});
  }
  SkipGramModel::Config cfg;
  cfg.dim = 16;
  cfg.epochs = 6;
  cfg.seed = 9;
  SkipGramModel model = SkipGramModel::Train(sents, cfg);
  ASSERT_TRUE(model.HasWord("cat"));
  ASSERT_TRUE(model.HasWord("paris"));
  const Float same_group = model.Similarity("cat", "dog");
  const Float cross_group = model.Similarity("cat", "paris");
  EXPECT_GT(same_group, cross_group);
}

TEST(SgnsTest, MinCountFiltersRareWords) {
  std::vector<std::vector<std::string>> sents = {
      {"common", "common", "rare"}, {"common", "words", "words"}};
  SkipGramModel::Config cfg;
  cfg.min_count = 2;
  SkipGramModel model = SkipGramModel::Train(sents, cfg);
  EXPECT_TRUE(model.HasWord("common"));
  EXPECT_FALSE(model.HasWord("rare"));
}

TEST(SgnsTest, CopyIntoEmbedding) {
  auto sents = data::GenerateUnlabeledText(data::Genre::kNews, 100, 7);
  SkipGramModel::Config cfg;
  cfg.dim = 12;
  cfg.epochs = 1;
  cfg.min_count = 1;
  SkipGramModel model = SkipGramModel::Train(sents, cfg);

  text::Corpus corpus = SmallCorpus();
  text::Vocabulary vocab = text::Vocabulary::FromCorpus(corpus);
  Rng rng(8);
  Embedding emb(vocab.size(), 12, &rng);
  const int copied = model.CopyInto(vocab, &emb);
  EXPECT_GT(copied, 10);
  // A copied row matches the SGNS vector.
  for (int id = 1; id < vocab.size(); ++id) {
    const std::string& w = vocab.TokenOf(id);
    if (model.HasWord(w)) {
      const auto& vec = model.VectorOf(w);
      for (int j = 0; j < 12; ++j) {
        EXPECT_DOUBLE_EQ(emb.LookupOne(id)->value[j], vec[j]);
      }
      break;
    }
  }
}

// --- Language models ---

TEST(CharLmTest, TrainingReducesNll) {
  auto sents = data::GenerateUnlabeledText(data::Genre::kNews, 30, 11);
  CharLm::Config cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 12;
  cfg.char_dim = 8;
  CharLm lm(cfg);
  const Float before = lm.Evaluate(sents);
  lm.Train(sents);
  const Float after = lm.Evaluate(sents);
  EXPECT_LT(after, before);
}

TEST(CharLmTest, ExtractIsContextSensitive) {
  auto sents = data::GenerateUnlabeledText(data::Genre::kNews, 20, 13);
  CharLm::Config cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 10;
  CharLm lm(cfg);
  lm.Train(sents);
  // Same word, different contexts -> different embeddings (the defining
  // property of contextual string embeddings, Fig. 4).
  Tensor a = lm.Extract({"Washington", "spoke", "today"});
  Tensor b = lm.Extract({"they", "visited", "Washington"});
  EXPECT_EQ(a.cols(), lm.dim());
  Float diff = 0.0;
  for (int j = 0; j < lm.dim(); ++j) {
    diff += std::abs(a.at(0, j) - b.at(2, j));
  }
  EXPECT_GT(diff, 1e-6);
}

TEST(CharLmTest, ExtractShapeMatchesTokens) {
  CharLm::Config cfg;
  cfg.hidden_dim = 6;
  CharLm lm(cfg);
  Tensor out = lm.Extract({"one", "two", "three", "four"});
  EXPECT_EQ(out.rows(), 4);
  EXPECT_EQ(out.cols(), 12);
}

TEST(TokenLmTest, TrainAndExtract) {
  auto sents = data::GenerateUnlabeledText(data::Genre::kNews, 40, 17);
  TokenLm::Config cfg;
  cfg.epochs = 1;
  cfg.hidden_dim = 10;
  cfg.word_dim = 10;
  TokenLm lm(cfg);
  const Float nll = lm.Train(sents);
  EXPECT_GT(nll, 0.0);
  Tensor out = lm.Extract({"the", "company", "said"});
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 20);
}

TEST(LmFeatureTest, FrozenFeaturesHaveNoParameters) {
  CharLm::Config cfg;
  cfg.hidden_dim = 6;
  CharLm lm(cfg);
  CharLmFeature feat(&lm);
  EXPECT_TRUE(feat.Parameters().empty());
  Var out = feat.Forward({"a", "b"}, true);
  EXPECT_FALSE(out->requires_grad);
  EXPECT_EQ(out->value.cols(), feat.dim());
}

}  // namespace
}  // namespace dlner::embeddings
