// Brute-force oracles for the structured decoders and the scorer.
//
// The CRF and semi-CRF dynamic programs admit exact small-n oracles: path
// (resp. segmentation) enumeration over the decoder's own score primitives.
// The enumerations check the *recursions* — forward log-partition, Viterbi,
// forward-backward marginals — against sums/argmaxes that cannot get the
// recursion wrong because they do not use one. Keep K^T (resp. the
// segmentation count) in the low thousands.
#ifndef DLNER_TESTS_SUPPORT_ORACLES_H_
#define DLNER_TESTS_SUPPORT_ORACLES_H_

#include <vector>

#include "decoders/crf.h"
#include "decoders/semicrf.h"
#include "eval/metrics.h"
#include "tensor/tensor.h"

namespace dlner::testsup {

/// Exhaustive enumeration of all K^T tag paths of a CRF.
struct CrfBruteForce {
  Float log_partition = 0.0;
  std::vector<int> best_path;        // argmax over all paths
  Float best_score = 0.0;
  std::vector<int> best_valid_path;  // argmax over scheme-valid paths
  Float best_valid_score = 0.0;
  Tensor marginals;                  // [T, K] exact posteriors
};
CrfBruteForce EnumerateCrf(const decoders::CrfDecoder& dec,
                           const Var& emissions);

/// Exhaustive enumeration of all segmentations of a semi-CRF (O segments
/// restricted to length 1, segment length capped at max_segment_len()).
struct SemiCrfBruteForce {
  Float log_partition = 0.0;
  std::vector<decoders::SemiCrfDecoder::Segment> best_segments;
  Float best_score = 0.0;
};
SemiCrfBruteForce EnumerateSemiCrf(const decoders::SemiCrfDecoder& dec,
                                   const Var& encodings);

/// Independent exact-match scorer: per-sentence multiset intersection on
/// (start, end, type) keys instead of the evaluator's greedy matching. For
/// exact-equality matching the two formulations are provably equivalent,
/// so any count disagreement is a bug in one of them.
eval::ExactResult OracleExactMatch(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& predicted);

}  // namespace dlner::testsup

#endif  // DLNER_TESTS_SUPPORT_ORACLES_H_
