// Naive reference implementations of the tensor hot kernels.
//
// These are deliberately the textbook forms — O(n^3) triple-loop MatMul
// with no blocking or zero-skipping, and unfused affine + activation
// compositions — so the differential suite can pit every fused/blocked
// fast path in src/tensor/ops.cc against an implementation too simple to
// share its bugs.
#ifndef DLNER_TESTS_SUPPORT_REFERENCE_KERNELS_H_
#define DLNER_TESTS_SUPPORT_REFERENCE_KERNELS_H_

#include <vector>

#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace dlner::testsup {

/// Random tensor with entries uniform in [lo, hi); each entry is
/// independently zeroed with probability `zero_prob` so the zero-skipping
/// GEMM branch is exercised.
Tensor RandomTensor(std::vector<int> shape, Rng* rng, Float lo, Float hi,
                    double zero_prob = 0.0);

/// C[m,n] = A[m,k] * B[k,n], textbook triple loop.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b);

/// x [m,k] * w [k,n] + row-broadcast b [n].
Tensor NaiveAffine(const Tensor& x, const Tensor& w, const Tensor& b);

/// x [k] * w [k,n] + b [n].
Tensor NaiveAffineVec(const Tensor& x, const Tensor& w, const Tensor& b);

// Elementwise references for the fused/in-place activation paths.
Tensor NaiveTanh(const Tensor& t);
Tensor NaiveSigmoid(const Tensor& t);
Tensor NaiveRelu(const Tensor& t);
Tensor NaiveExp(const Tensor& t);

/// Largest elementwise |a - b|; requires equal shapes.
Float MaxAbsDiff(const Tensor& a, const Tensor& b);

}  // namespace dlner::testsup

#endif  // DLNER_TESTS_SUPPORT_REFERENCE_KERNELS_H_
