// Seeded corpora and model-configuration enumeration for the correctness
// harness. Everything here is deterministic: the same seed always yields the
// same corpus and the same config, so differential/invariance failures
// reproduce bit-for-bit.
#ifndef DLNER_TESTS_SUPPORT_CORPUS_GEN_H_
#define DLNER_TESTS_SUPPORT_CORPUS_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "data/dataset.h"
#include "text/types.h"

namespace dlner::testsup {

/// Small seeded corpus from the standard registry ("conll-like", ...).
text::Corpus SmallCorpus(const std::string& dataset, int num_sentences,
                         uint64_t seed);

/// Seeded train/dev/test triple with OOV test entities (shared generator
/// with the benchmark harnesses; see data::MakeOovSplit).
data::DataSplit SmallSplit(data::Genre genre, int train_size, int test_size,
                           uint64_t seed);

/// Sorted entity-type inventory actually used by a corpus.
std::vector<std::string> EntityTypesOf(const text::Corpus& corpus);

/// Copy of `corpus` with every sentence truncated to `max_tokens` tokens
/// (spans crossing the cut are dropped), for brute-force-sized inputs.
text::Corpus TruncateSentences(const text::Corpus& corpus, int max_tokens);

/// Every context-encoder name accepted by NerConfig::Valid().
const std::vector<std::string>& AllEncoders();

/// Every tag-decoder name accepted by NerConfig::Valid().
const std::vector<std::string>& AllDecoders();

/// Smallest-sensible config for an encoder x decoder cell: tiny dims so all
/// 42 combinations build and run in a test-suite time budget, valid for
/// every pair (e.g. hidden_dim divisible by transformer_heads).
core::NerConfig TinyConfig(const std::string& encoder,
                           const std::string& decoder, uint64_t seed);

}  // namespace dlner::testsup

#endif  // DLNER_TESTS_SUPPORT_CORPUS_GEN_H_
