#include "support/reference_kernels.h"

#include <algorithm>
#include <cmath>

#include "tensor/check.h"

namespace dlner::testsup {

Tensor RandomTensor(std::vector<int> shape, Rng* rng, Float lo, Float hi,
                    double zero_prob) {
  Tensor t(std::move(shape));
  for (int i = 0; i < t.size(); ++i) {
    t[i] = rng->Bernoulli(zero_prob) ? 0.0 : rng->Uniform(lo, hi);
  }
  return t;
}

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  DLNER_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows(), k = a.cols(), n = b.cols();
  Tensor c({m, n});
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      Float s = 0.0;
      for (int p = 0; p < k; ++p) s += a.at(i, p) * b.at(p, j);
      c.at(i, j) = s;
    }
  }
  return c;
}

Tensor NaiveAffine(const Tensor& x, const Tensor& w, const Tensor& b) {
  Tensor c = NaiveMatMul(x, w);
  DLNER_CHECK_EQ(b.size(), c.cols());
  for (int i = 0; i < c.rows(); ++i) {
    for (int j = 0; j < c.cols(); ++j) c.at(i, j) += b[j];
  }
  return c;
}

Tensor NaiveAffineVec(const Tensor& x, const Tensor& w, const Tensor& b) {
  DLNER_CHECK_EQ(x.size(), w.rows());
  DLNER_CHECK_EQ(b.size(), w.cols());
  Tensor out({w.cols()});
  for (int j = 0; j < w.cols(); ++j) {
    Float s = b[j];
    for (int p = 0; p < w.rows(); ++p) s += x[p] * w.at(p, j);
    out[j] = s;
  }
  return out;
}

namespace {
template <typename F>
Tensor Elementwise(const Tensor& t, F f) {
  Tensor out = t;
  for (int i = 0; i < out.size(); ++i) out[i] = f(out[i]);
  return out;
}
}  // namespace

Tensor NaiveTanh(const Tensor& t) {
  return Elementwise(t, [](Float x) { return std::tanh(x); });
}

Tensor NaiveSigmoid(const Tensor& t) {
  return Elementwise(t, [](Float x) { return 1.0 / (1.0 + std::exp(-x)); });
}

Tensor NaiveRelu(const Tensor& t) {
  return Elementwise(t, [](Float x) { return x > 0.0 ? x : 0.0; });
}

Tensor NaiveExp(const Tensor& t) {
  return Elementwise(t, [](Float x) { return std::exp(x); });
}

Float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  DLNER_CHECK_MSG(a.SameShape(b), a.ShapeString() << " vs "
                                                  << b.ShapeString());
  Float worst = 0.0;
  for (int i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace dlner::testsup
