#include "support/oracles.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <tuple>

#include "tensor/check.h"

namespace dlner::testsup {
namespace {

// log(sum(exp(scores))) with the usual max shift.
Float LogSumExpOf(const std::vector<Float>& scores) {
  DLNER_CHECK(!scores.empty());
  Float mx = scores[0];
  for (Float s : scores) mx = std::max(mx, s);
  Float acc = 0.0;
  for (Float s : scores) acc += std::exp(s - mx);
  return mx + std::log(acc);
}

}  // namespace

CrfBruteForce EnumerateCrf(const decoders::CrfDecoder& dec,
                           const Var& emissions) {
  const int t_len = emissions->value.rows();
  const int k = emissions->value.cols();
  DLNER_CHECK_GE(t_len, 1);
  const text::TagSet& tags = dec.tags();

  CrfBruteForce out;
  out.best_score = -1e300;
  out.best_valid_score = -1e300;
  out.marginals = Tensor({t_len, k});

  std::vector<Float> scores;
  std::vector<std::vector<int>> paths;
  std::vector<int> path(t_len, 0);
  while (true) {
    const Float s = dec.PathScore(emissions, path)->value[0];
    scores.push_back(s);
    paths.push_back(path);
    if (s > out.best_score) {
      out.best_score = s;
      out.best_path = path;
    }
    bool valid = tags.IsValidStart(path[0]) && tags.IsValidEnd(path[t_len - 1]);
    for (int t = 1; valid && t < t_len; ++t) {
      valid = tags.IsValidTransition(path[t - 1], path[t]);
    }
    if (valid && s > out.best_valid_score) {
      out.best_valid_score = s;
      out.best_valid_path = path;
    }
    // Odometer over the K^T paths.
    int i = t_len - 1;
    while (i >= 0 && path[i] == k - 1) path[i--] = 0;
    if (i < 0) break;
    ++path[i];
  }

  out.log_partition = LogSumExpOf(scores);
  for (size_t p = 0; p < paths.size(); ++p) {
    const Float prob = std::exp(scores[p] - out.log_partition);
    for (int t = 0; t < t_len; ++t) out.marginals.at(t, paths[p][t]) += prob;
  }
  return out;
}

SemiCrfBruteForce EnumerateSemiCrf(const decoders::SemiCrfDecoder& dec,
                                   const Var& encodings) {
  const int t_len = encodings->value.rows();
  const int max_len = dec.max_segment_len();
  const int y = dec.num_labels();

  SemiCrfBruteForce out;
  out.best_score = -1e300;
  std::vector<Float> scores;
  std::vector<decoders::SemiCrfDecoder::Segment> current;
  std::function<void(int)> recurse = [&](int pos) {
    if (pos == t_len) {
      const Float s = dec.SegmentationScore(encodings, current)->value[0];
      scores.push_back(s);
      if (s > out.best_score) {
        out.best_score = s;
        out.best_segments = current;
      }
      return;
    }
    for (int len = 1; len <= std::min(max_len, t_len - pos); ++len) {
      for (int label = 0; label < y; ++label) {
        if (label == 0 && len > 1) continue;  // O segments have length 1
        current.push_back({pos, pos + len, label});
        recurse(pos + len);
        current.pop_back();
      }
    }
  };
  recurse(0);

  out.log_partition = LogSumExpOf(scores);
  return out;
}

eval::ExactResult OracleExactMatch(
    const std::vector<std::vector<text::Span>>& gold,
    const std::vector<std::vector<text::Span>>& predicted) {
  DLNER_CHECK_EQ(gold.size(), predicted.size());
  using Key = std::tuple<int, int, std::string>;
  std::map<std::string, eval::Prf> per_type;
  for (size_t i = 0; i < gold.size(); ++i) {
    std::map<Key, int> g_count, p_count;
    for (const text::Span& sp : gold[i]) {
      g_count[{sp.start, sp.end, sp.type}]++;
    }
    for (const text::Span& sp : predicted[i]) {
      p_count[{sp.start, sp.end, sp.type}]++;
    }
    for (const auto& [key, n_gold] : g_count) {
      const auto it = p_count.find(key);
      const int n_pred = it == p_count.end() ? 0 : it->second;
      const int matched = std::min(n_gold, n_pred);
      eval::Prf& prf = per_type[std::get<2>(key)];
      prf.tp += matched;
      prf.fn += n_gold - matched;
    }
    for (const auto& [key, n_pred] : p_count) {
      const auto it = g_count.find(key);
      const int n_gold = it == g_count.end() ? 0 : it->second;
      per_type[std::get<2>(key)].fp += n_pred - std::min(n_gold, n_pred);
    }
  }

  eval::ExactResult result;
  result.per_type = per_type;
  double macro_sum = 0.0;
  for (const auto& [type, prf] : per_type) {
    result.micro.tp += prf.tp;
    result.micro.fp += prf.fp;
    result.micro.fn += prf.fn;
    macro_sum += prf.f1();
  }
  result.macro_f1 = per_type.empty()
                        ? 0.0
                        : macro_sum / static_cast<double>(per_type.size());
  return result;
}

}  // namespace dlner::testsup
