#include "support/mutate.h"

#include <algorithm>

namespace dlner::testsup {
namespace {

// Offset biased toward the first 64 bytes half the time: that is where
// magic strings, version fields, and top-level counts live, and corruptions
// there reach the most distinct reader branches.
size_t PickOffset(size_t len, Rng* rng) {
  if (len == 0) return 0;
  const size_t header = std::min<size_t>(len, 64);
  if (rng->Bernoulli(0.5)) {
    return static_cast<size_t>(rng->UniformInt(0, static_cast<int>(header) - 1));
  }
  return static_cast<size_t>(
      rng->UniformInt(0, static_cast<int>(len) - 1));
}

}  // namespace

std::string MutateBytes(const std::string& base, const std::string& other,
                        Rng* rng) {
  std::string s = base;
  // Apply 1-3 stacked mutations; single-bit corruptions alone leave most of
  // the stream valid, stacking reaches deeper reader states.
  const int rounds = rng->UniformInt(1, 3);
  for (int round = 0; round < rounds; ++round) {
    switch (rng->UniformInt(0, 5)) {
      case 0: {  // truncate to a random prefix
        if (s.empty()) break;
        s.resize(static_cast<size_t>(
            rng->UniformInt(0, static_cast<int>(s.size()) - 1)));
        break;
      }
      case 1: {  // flip one bit
        if (s.empty()) break;
        const size_t at = PickOffset(s.size(), rng);
        s[at] = static_cast<char>(s[at] ^ (1 << rng->UniformInt(0, 7)));
        break;
      }
      case 2: {  // overwrite a byte with an adversarial value
        if (s.empty()) break;
        static constexpr unsigned char kEvil[] = {0x00, 0x01, 0x7f, 0x80,
                                                  0xfe, 0xff};
        s[PickOffset(s.size(), rng)] = static_cast<char>(
            kEvil[rng->UniformInt(0, sizeof(kEvil) - 1)]);
        break;
      }
      case 3: {  // splice: prefix of one input + suffix of the other
        const std::string& donor = other.empty() ? base : other;
        const size_t cut_a = PickOffset(s.size() + 1, rng);
        const size_t cut_b = PickOffset(donor.size() + 1, rng);
        s = s.substr(0, cut_a) + donor.substr(std::min(cut_b, donor.size()));
        break;
      }
      case 4: {  // duplicate an internal block in place
        if (s.size() < 2) break;
        const size_t at = PickOffset(s.size(), rng);
        const size_t n = std::min<size_t>(
            s.size() - at, static_cast<size_t>(rng->UniformInt(1, 16)));
        s.insert(at, s.substr(at, n));
        break;
      }
      default: {  // delete an internal block
        if (s.empty()) break;
        const size_t at = PickOffset(s.size(), rng);
        const size_t n = std::min<size_t>(
            s.size() - at, static_cast<size_t>(rng->UniformInt(1, 16)));
        s.erase(at, n);
        break;
      }
    }
  }
  return s;
}

}  // namespace dlner::testsup
