// Deterministic structure-aware byte mutation for fuzzing binary readers.
//
// Every strategy draws from the caller's seeded Rng, so a failing iteration
// index reproduces the exact corrupt input. The mix is tuned for
// length-prefixed binary formats: header-biased corruption attacks magic
// and count fields, truncation attacks every reader's short-stream path,
// bit flips attack value decoding, and splices of two valid inputs attack
// block-boundary confusion.
#ifndef DLNER_TESTS_SUPPORT_MUTATE_H_
#define DLNER_TESTS_SUPPORT_MUTATE_H_

#include <string>

#include "tensor/rng.h"

namespace dlner::testsup {

/// One random mutation of `base`. `other` (possibly empty) donates bytes
/// for splice mutations — ideally a valid input of the same format with a
/// different internal layout.
std::string MutateBytes(const std::string& base, const std::string& other,
                        Rng* rng);

}  // namespace dlner::testsup

#endif  // DLNER_TESTS_SUPPORT_MUTATE_H_
