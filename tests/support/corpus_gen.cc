#include "support/corpus_gen.h"

#include <algorithm>
#include <set>

namespace dlner::testsup {

text::Corpus SmallCorpus(const std::string& dataset, int num_sentences,
                         uint64_t seed) {
  return data::MakeDataset(dataset, num_sentences, seed);
}

data::DataSplit SmallSplit(data::Genre genre, int train_size, int test_size,
                           uint64_t seed) {
  return data::MakeOovSplit(genre, train_size, test_size, seed);
}

std::vector<std::string> EntityTypesOf(const text::Corpus& corpus) {
  std::set<std::string> types;
  for (const auto& s : corpus.sentences) {
    for (const auto& sp : s.spans) types.insert(sp.type);
  }
  return {types.begin(), types.end()};
}

text::Corpus TruncateSentences(const text::Corpus& corpus, int max_tokens) {
  text::Corpus out;
  for (const auto& s : corpus.sentences) {
    text::Sentence t;
    const int n = std::min(s.size(), max_tokens);
    t.tokens.assign(s.tokens.begin(), s.tokens.begin() + n);
    for (const text::Span& sp : s.spans) {
      if (sp.end <= n) t.spans.push_back(sp);
    }
    if (!t.tokens.empty()) out.sentences.push_back(std::move(t));
  }
  return out;
}

const std::vector<std::string>& AllEncoders() {
  static const std::vector<std::string> kEncoders = {
      "mlp", "cnn", "idcnn", "bilstm", "bigru", "brnn", "transformer"};
  return kEncoders;
}

const std::vector<std::string>& AllDecoders() {
  static const std::vector<std::string> kDecoders = {
      "softmax", "crf", "semicrf", "rnn", "pointer", "fofe"};
  return kDecoders;
}

core::NerConfig TinyConfig(const std::string& encoder,
                           const std::string& decoder, uint64_t seed) {
  core::NerConfig config;
  config.word_dim = 8;
  config.hidden_dim = 8;  // divisible by transformer_heads = 2
  config.encoder = encoder;
  config.decoder = decoder;
  config.encoder_layers = 1;
  config.cnn_layers = 1;
  config.idcnn_dilations = {1, 2};
  config.idcnn_iterations = 1;
  config.transformer_ffn = 16;
  config.max_segment_len = 4;
  config.tag_embed_dim = 4;
  config.decoder_hidden = 8;
  config.input_dropout = 0.0;  // inference-focused: no train-time noise
  config.encoder_dropout = 0.0;
  config.seed = seed;
  return config;
}

}  // namespace dlner::testsup
