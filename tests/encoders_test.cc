#include <memory>

#include <gtest/gtest.h>

#include "encoders/cnn.h"
#include "encoders/encoder.h"
#include "encoders/rnn_encoder.h"
#include "encoders/transformer.h"
#include "tensor/gradcheck.h"
#include "tensor/ops.h"

namespace dlner::encoders {
namespace {

Var RandomInput(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t({rows, cols});
  for (int i = 0; i < t.size(); ++i) t[i] = rng.Uniform(-1.0, 1.0);
  return Parameter(std::move(t));
}

std::unique_ptr<ContextEncoder> MakeEncoder(const std::string& kind,
                                            int in_dim, Rng* rng) {
  if (kind == "mlp") return std::make_unique<MlpEncoder>(in_dim, 10, rng);
  if (kind == "cnn") {
    return std::make_unique<CnnEncoder>(in_dim, 10, 2, true, rng);
  }
  if (kind == "idcnn") {
    return std::make_unique<IdCnnEncoder>(in_dim, 10,
                                          std::vector<int>{1, 2, 4}, 2, rng);
  }
  if (kind == "bilstm") {
    return std::make_unique<RnnEncoder>("lstm", in_dim, 5, 1, 0.0, rng);
  }
  if (kind == "bigru") {
    return std::make_unique<RnnEncoder>("gru", in_dim, 5, 2, 0.0, rng);
  }
  if (kind == "transformer") {
    return std::make_unique<TransformerEncoder>(in_dim, 12, 2, 24, 2, 0.0,
                                                rng);
  }
  return nullptr;
}

class EncoderTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EncoderTest, OutputShapeMatchesContract) {
  Rng rng(1);
  auto enc = MakeEncoder(GetParam(), 7, &rng);
  ASSERT_NE(enc, nullptr);
  Var x = Constant(Tensor({9, 7}));
  Var out = enc->Encode(x, false);
  EXPECT_EQ(out->value.rows(), 9);
  EXPECT_EQ(out->value.cols(), enc->out_dim());
}

TEST_P(EncoderTest, GradCheck) {
  Rng rng(2);
  auto enc = MakeEncoder(GetParam(), 4, &rng);
  Var x = RandomInput(5, 4, 3);
  std::vector<Var> inputs = enc->Parameters();
  inputs.push_back(x);
  EXPECT_LT(
      MaxGradError([&] { return Mean(Tanh(enc->Encode(x, false))); }, inputs),
      2e-5)
      << GetParam();
}

TEST_P(EncoderTest, HasTrainableParameters) {
  Rng rng(3);
  auto enc = MakeEncoder(GetParam(), 4, &rng);
  EXPECT_GT(enc->ParameterCount(), 0);
}

TEST_P(EncoderTest, SingleTokenSentence) {
  Rng rng(4);
  auto enc = MakeEncoder(GetParam(), 6, &rng);
  Var x = Constant(Tensor({1, 6}));
  Var out = enc->Encode(x, false);
  EXPECT_EQ(out->value.rows(), 1);
}

INSTANTIATE_TEST_SUITE_P(Kinds, EncoderTest,
                         ::testing::Values("mlp", "cnn", "idcnn", "bilstm",
                                           "bigru", "transformer"),
                         [](const auto& info) { return info.param; });

TEST(MlpEncoderTest, NoContextMixing) {
  // A per-token MLP must not let token 0 influence token 2.
  Rng rng(5);
  MlpEncoder enc(3, 6, &rng);
  Tensor base({3, 3});
  Tensor modified = base;
  modified.at(0, 0) = 5.0;
  Var out_a = enc.Encode(Constant(base), false);
  Var out_b = enc.Encode(Constant(modified), false);
  for (int j = 0; j < 6; ++j) {
    EXPECT_DOUBLE_EQ(out_a->value.at(2, j), out_b->value.at(2, j));
  }
}

TEST(CnnEncoderTest, GlobalFeatureMixesWholeSentence) {
  // With the global max-pool feature, distant tokens do influence each
  // position (Collobert's "whole sentence consideration").
  Rng rng(6);
  CnnEncoder enc(3, 6, 1, /*global_feature=*/true, &rng);
  Tensor base({8, 3});
  Tensor modified = base;
  modified.at(7, 2) = 9.0;  // far from position 0, outside any conv window
  Var out_a = enc.Encode(Constant(base), false);
  Var out_b = enc.Encode(Constant(modified), false);
  bool changed = false;
  for (int j = 0; j < enc.out_dim(); ++j) {
    if (out_a->value.at(0, j) != out_b->value.at(0, j)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(CnnEncoderTest, LocalOnlyWithoutGlobalFeature) {
  Rng rng(7);
  CnnEncoder enc(3, 6, 1, /*global_feature=*/false, &rng);
  Tensor base({8, 3});
  Tensor modified = base;
  modified.at(7, 2) = 9.0;
  Var out_a = enc.Encode(Constant(base), false);
  Var out_b = enc.Encode(Constant(modified), false);
  for (int j = 0; j < enc.out_dim(); ++j) {
    EXPECT_DOUBLE_EQ(out_a->value.at(0, j), out_b->value.at(0, j));
  }
}

TEST(IdCnnTest, DilationGrowsReceptiveField) {
  // Block dilations {1, 2} iterated twice: receptive field reaches +-6;
  // a single width-3 dilation-1 conv would only reach +-1.
  Rng rng(8);
  IdCnnEncoder enc(2, 4, {1, 2}, 2, &rng);
  Rng data_rng(88);
  Tensor base({13, 2});
  for (int i = 0; i < base.size(); ++i) base[i] = data_rng.Uniform(-1.0, 1.0);
  Tensor modified = base;
  modified.at(6 + 5, 1) += 5.0;  // 5 positions away from the probe at t=6
  Var out_a = enc.Encode(Constant(base), false);
  Var out_b = enc.Encode(Constant(modified), false);
  // Some position at distance >= 4 from the perturbation must change
  // (individual positions can be masked by dead ReLU units, so probe a
  // band rather than a single index).
  bool changed = false;
  for (int t = 5; t <= 7; ++t) {
    for (int j = 0; j < enc.out_dim(); ++j) {
      if (out_a->value.at(t, j) != out_b->value.at(t, j)) changed = true;
    }
  }
  EXPECT_TRUE(changed);
  // ...and positions beyond the +-6 receptive field must NOT change.
  for (int t = 0; t <= 4; ++t) {
    for (int j = 0; j < enc.out_dim(); ++j) {
      EXPECT_DOUBLE_EQ(out_a->value.at(t, j), out_b->value.at(t, j));
    }
  }
}

TEST(IdCnnTest, SharedParametersAcrossIterations) {
  // Parameter count is independent of the iteration count.
  Rng rng_a(9), rng_b(9);
  IdCnnEncoder one(4, 8, {1, 2, 4}, 1, &rng_a);
  IdCnnEncoder four(4, 8, {1, 2, 4}, 4, &rng_b);
  EXPECT_EQ(one.ParameterCount(), four.ParameterCount());
}

TEST(RnnEncoderTest, BidirectionalContextReachesBothEnds) {
  Rng rng(10);
  RnnEncoder enc("lstm", 2, 4, 1, 0.0, &rng);
  Tensor base({6, 2});
  Tensor modified = base;
  modified.at(5, 0) = 2.0;  // last token change must reach position 0
  Var out_a = enc.Encode(Constant(base), false);
  Var out_b = enc.Encode(Constant(modified), false);
  bool changed = false;
  for (int j = 0; j < enc.out_dim(); ++j) {
    if (out_a->value.at(0, j) != out_b->value.at(0, j)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(TransformerTest, PositionSensitivity) {
  // Swapping two tokens must change the output at other positions (thanks
  // to position encodings + attention), unlike a bag-of-words pooling.
  Rng rng(11);
  TransformerEncoder enc(3, 8, 2, 16, 1, 0.0, &rng);
  Rng data_rng(12);
  Tensor x({5, 3});
  for (int i = 0; i < x.size(); ++i) x[i] = data_rng.Uniform(-1.0, 1.0);
  Tensor swapped = x;
  for (int j = 0; j < 3; ++j) std::swap(swapped.at(1, j), swapped.at(3, j));
  Var out_a = enc.Encode(Constant(x), false);
  Var out_b = enc.Encode(Constant(swapped), false);
  bool changed = false;
  for (int j = 0; j < enc.out_dim(); ++j) {
    if (out_a->value.at(0, j) != out_b->value.at(0, j)) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(MultiHeadAttentionTest, ShapeAndGradCheck) {
  Rng rng(13);
  MultiHeadAttention mha(8, 2, &rng);
  Var x = RandomInput(4, 8, 14);
  Var out = mha.Apply(x);
  EXPECT_EQ(out->value.rows(), 4);
  EXPECT_EQ(out->value.cols(), 8);
  std::vector<Var> inputs = mha.Parameters();
  inputs.push_back(x);
  EXPECT_LT(MaxGradError([&] { return Mean(Tanh(mha.Apply(x))); }, inputs),
            2e-5);
}

TEST(MultiHeadAttentionDeathTest, IndivisibleHeadsAbort) {
  Rng rng(15);
  EXPECT_DEATH(MultiHeadAttention(7, 2, &rng), "DLNER_CHECK");
}

}  // namespace
}  // namespace dlner::encoders
