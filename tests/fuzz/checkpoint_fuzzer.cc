// libFuzzer entry point for the checkpoint reader: any byte string must
// either load into a usable pipeline or be rejected with nullptr. Mirrors
// tests/fuzz_test.cc's deterministic loop but lets coverage guidance search
// the input space. Seed corpora: save any trained pipeline to a file.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "text/types.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  const auto pipeline = dlner::core::Pipeline::Load(is);
  if (pipeline != nullptr) {
    const std::vector<std::string> probe = {"Alice", "visited", "Paris"};
    const auto spans = pipeline->Tag(probe);
    if (!dlner::text::SpansAreValid(spans, static_cast<int>(probe.size()))) {
      __builtin_trap();
    }
  }
  return 0;
}
