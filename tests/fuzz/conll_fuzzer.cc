// libFuzzer entry point for the CoNLL reader: any byte string must either
// parse into a corpus whose spans are structurally valid or be rejected
// with false. Seed corpora: any CoNLL-format file.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "text/conll.h"
#include "text/types.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::istringstream is(
      std::string(reinterpret_cast<const char*>(data), size));
  dlner::text::Corpus corpus;
  if (dlner::text::ReadConll(is, &corpus)) {
    for (const dlner::text::Sentence& s : corpus.sentences) {
      if (!dlner::text::SpansAreValid(s.spans, s.size())) {
        __builtin_trap();
      }
    }
  }
  return 0;
}
