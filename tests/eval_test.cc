#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace dlner::eval {
namespace {

using text::Span;

TEST(PrfTest, ZeroCountsGiveZeroScores) {
  Prf prf;
  EXPECT_EQ(prf.precision(), 0.0);
  EXPECT_EQ(prf.recall(), 0.0);
  EXPECT_EQ(prf.f1(), 0.0);
}

TEST(PrfTest, HandComputedValues) {
  Prf prf;
  prf.tp = 6;
  prf.fp = 2;
  prf.fn = 4;
  EXPECT_DOUBLE_EQ(prf.precision(), 0.75);
  EXPECT_DOUBLE_EQ(prf.recall(), 0.6);
  EXPECT_NEAR(prf.f1(), 2 * 0.75 * 0.6 / 1.35, 1e-12);
}

TEST(ExactMatchTest, PerfectPrediction) {
  ExactMatchEvaluator ev;
  std::vector<Span> gold = {{0, 2, "PER"}, {3, 4, "LOC"}};
  ev.Add(gold, gold);
  ExactResult r = ev.Result();
  EXPECT_DOUBLE_EQ(r.micro.f1(), 1.0);
  EXPECT_DOUBLE_EQ(r.macro_f1, 1.0);
}

TEST(ExactMatchTest, BoundaryErrorIsBothFpAndFn) {
  ExactMatchEvaluator ev;
  ev.Add({{0, 2, "PER"}}, {{0, 3, "PER"}});  // off-by-one boundary
  ExactResult r = ev.Result();
  EXPECT_EQ(r.micro.tp, 0);
  EXPECT_EQ(r.micro.fp, 1);
  EXPECT_EQ(r.micro.fn, 1);
}

TEST(ExactMatchTest, TypeErrorIsBothFpAndFn) {
  ExactMatchEvaluator ev;
  ev.Add({{0, 2, "PER"}}, {{0, 2, "LOC"}});
  ExactResult r = ev.Result();
  EXPECT_EQ(r.micro.tp, 0);
  EXPECT_EQ(r.per_type.at("LOC").fp, 1);
  EXPECT_EQ(r.per_type.at("PER").fn, 1);
}

TEST(ExactMatchTest, DuplicatePredictionsNotDoubleCounted) {
  ExactMatchEvaluator ev;
  ev.Add({{0, 1, "PER"}}, {{0, 1, "PER"}, {0, 1, "PER"}});
  ExactResult r = ev.Result();
  EXPECT_EQ(r.micro.tp, 1);
  EXPECT_EQ(r.micro.fp, 1);
  EXPECT_EQ(r.micro.fn, 0);
}

TEST(ExactMatchTest, MicroVsMacroUnderImbalance) {
  // Frequent type predicted perfectly, rare type entirely missed: micro F1
  // stays high, macro F1 collapses toward 0.5 (the Section 2.3.1 contrast).
  ExactMatchEvaluator ev;
  for (int i = 0; i < 9; ++i) {
    ev.Add({{0, 1, "FREQ"}}, {{0, 1, "FREQ"}});
  }
  ev.Add({{0, 1, "RARE"}}, {});
  ExactResult r = ev.Result();
  EXPECT_GT(r.micro.f1(), 0.9);
  EXPECT_LT(r.macro_f1, 0.55);
}

TEST(RelaxedMatchTest, OverlapWithRightTypeCreditsTypeDimension) {
  RelaxedMatchEvaluator ev;
  // Overlapping but not exact boundaries; same type.
  ev.Add({{0, 3, "PER"}}, {{1, 4, "PER"}});
  RelaxedResult r = ev.Result();
  EXPECT_EQ(r.type.tp, 1);
  EXPECT_EQ(r.text.tp, 0);  // boundaries differ
  EXPECT_GT(r.muc_f1, 0.0);
  EXPECT_LT(r.muc_f1, 1.0);
}

TEST(RelaxedMatchTest, ExactBoundariesWrongTypeCreditsTextDimension) {
  RelaxedMatchEvaluator ev;
  ev.Add({{0, 2, "PER"}}, {{0, 2, "LOC"}});
  RelaxedResult r = ev.Result();
  EXPECT_EQ(r.type.tp, 0);
  EXPECT_EQ(r.text.tp, 1);
}

TEST(RelaxedMatchTest, RelaxedNeverBelowExact) {
  // Any exact match credits both dimensions, so MUC F1 >= exact F1.
  std::vector<std::vector<Span>> gold = {
      {{0, 2, "PER"}, {4, 5, "LOC"}},
      {{1, 3, "ORG"}},
      {{0, 1, "PER"}},
  };
  std::vector<std::vector<Span>> pred = {
      {{0, 2, "PER"}, {4, 6, "LOC"}},  // 1 exact, 1 overlap
      {{1, 3, "PER"}},                 // boundary right, type wrong
      {},
  };
  const double exact = EvaluateExact(gold, pred).micro.f1();
  const double relaxed = EvaluateRelaxed(gold, pred).muc_f1;
  EXPECT_GE(relaxed, exact);
}

TEST(RelaxedMatchTest, NoOverlapNoCredit) {
  RelaxedMatchEvaluator ev;
  ev.Add({{0, 1, "PER"}}, {{3, 4, "PER"}});
  RelaxedResult r = ev.Result();
  EXPECT_EQ(r.type.tp, 0);
  EXPECT_EQ(r.text.tp, 0);
}

TEST(ExactMatchTest, EmptyCorpusYieldsAllZeros) {
  const ExactResult r = EvaluateExact({}, {});
  EXPECT_EQ(r.micro.tp, 0);
  EXPECT_EQ(r.micro.fp, 0);
  EXPECT_EQ(r.micro.fn, 0);
  EXPECT_EQ(r.macro_f1, 0.0);
  EXPECT_TRUE(r.per_type.empty());
  EXPECT_EQ(r.micro.f1(), 0.0);
}

TEST(ExactMatchTest, SentenceWithNoGoldSpans) {
  // No gold, no predictions: contributes nothing (no phantom types).
  ExactMatchEvaluator ev;
  ev.Add({}, {});
  EXPECT_TRUE(ev.Result().per_type.empty());

  // No gold but predictions: pure false positives.
  ev.Add({}, {{0, 1, "PER"}, {2, 3, "LOC"}});
  const ExactResult r = ev.Result();
  EXPECT_EQ(r.micro.tp, 0);
  EXPECT_EQ(r.micro.fp, 2);
  EXPECT_EQ(r.micro.fn, 0);
  EXPECT_EQ(r.per_type.at("PER").fp, 1);
  EXPECT_EQ(r.per_type.at("LOC").fp, 1);
}

TEST(ExactMatchTest, PredictionOnlyTypeEntersMacroDenominator) {
  // Gold type predicted perfectly; a second type appears only in
  // predictions. Its F1 of 0 must still be averaged in, halving macro-F1.
  ExactMatchEvaluator ev;
  ev.Add({{0, 1, "GOLD"}}, {{0, 1, "GOLD"}, {2, 3, "SPURIOUS"}});
  const ExactResult r = ev.Result();
  ASSERT_EQ(r.per_type.size(), 2u);
  EXPECT_EQ(r.per_type.at("SPURIOUS").fp, 1);
  EXPECT_DOUBLE_EQ(r.per_type.at("GOLD").f1(), 1.0);
  EXPECT_DOUBLE_EQ(r.macro_f1, 0.5);
}

TEST(RelaxedMatchTest, NestedGoldSpansAreMatchedOneToOne) {
  // Nested gold mentions: one prediction overlapping both may only consume
  // one of them, the other stays a false negative.
  RelaxedMatchEvaluator ev;
  ev.Add({{0, 5, "PER"}, {1, 2, "PER"}}, {{1, 3, "PER"}});
  const RelaxedResult r = ev.Result();
  EXPECT_EQ(r.type.tp, 1);
  EXPECT_EQ(r.type.fp, 0);
  EXPECT_EQ(r.type.fn, 1);
}

TEST(RelaxedMatchTest, OverlappingPredictionsCannotReuseOneGoldSpan) {
  // Two predictions overlapping the same single gold span: the second gets
  // no credit in either dimension.
  RelaxedMatchEvaluator ev;
  ev.Add({{0, 4, "LOC"}}, {{0, 4, "LOC"}, {1, 3, "LOC"}});
  const RelaxedResult r = ev.Result();
  EXPECT_EQ(r.type.tp, 1);
  EXPECT_EQ(r.type.fp, 1);
  EXPECT_EQ(r.text.tp, 1);
  EXPECT_EQ(r.text.fp, 1);
  EXPECT_EQ(r.type.fn, 0);
}

TEST(RelaxedMatchTest, EmptyCorpusYieldsZeroMucF1) {
  const RelaxedResult r = EvaluateRelaxed({}, {});
  EXPECT_EQ(r.type.tp + r.type.fp + r.type.fn, 0);
  EXPECT_EQ(r.text.tp + r.text.fp + r.text.fn, 0);
  EXPECT_EQ(r.muc_f1, 0.0);
}

TEST(BootstrapTest, DegenerateAllCorrectIsTightAtOne) {
  std::vector<std::vector<Span>> gold(20, {{0, 1, "X"}});
  Interval ci = BootstrapMicroF1(gold, gold, 200, 5);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(BootstrapTest, IntervalCoversPointEstimate) {
  std::vector<std::vector<Span>> gold, pred;
  for (int i = 0; i < 40; ++i) {
    gold.push_back({{0, 1, "X"}});
    // 70% correct.
    if (i % 10 < 7) {
      pred.push_back({{0, 1, "X"}});
    } else {
      pred.push_back({});
    }
  }
  const double point = EvaluateExact(gold, pred).micro.f1();
  Interval ci = BootstrapMicroF1(gold, pred, 500, 11);
  EXPECT_LE(ci.lo, point);
  EXPECT_GE(ci.hi, point);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(SignificanceTest, IdenticalSystemsAreNotSignificant) {
  std::vector<std::vector<Span>> gold(30, {{0, 1, "X"}});
  std::vector<std::vector<Span>> pred(30, {{0, 1, "X"}});
  const double p =
      ApproximateRandomizationPValue(gold, pred, pred, 200, 3);
  EXPECT_GT(p, 0.9);  // observed difference is 0: every trial ties it
}

TEST(SignificanceTest, LargeGapIsSignificant) {
  // System A perfect, system B always wrong, 60 sentences.
  std::vector<std::vector<Span>> gold, a, b;
  for (int i = 0; i < 60; ++i) {
    gold.push_back({{0, 2, "X"}});
    a.push_back({{0, 2, "X"}});
    b.push_back({{1, 2, "X"}});
  }
  const double p = ApproximateRandomizationPValue(gold, a, b, 400, 5);
  EXPECT_LT(p, 0.02);
}

TEST(SignificanceTest, TinyNoisyGapIsNotSignificant) {
  // Two systems differing on a single sentence out of 40.
  std::vector<std::vector<Span>> gold, a, b;
  for (int i = 0; i < 40; ++i) {
    gold.push_back({{0, 1, "X"}});
    a.push_back({{0, 1, "X"}});
    b.push_back(i == 0 ? std::vector<Span>{} : gold.back());
  }
  const double p = ApproximateRandomizationPValue(gold, a, b, 400, 7);
  EXPECT_GT(p, 0.05);
}

}  // namespace
}  // namespace dlner::eval
