#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "decoders/crf.h"
#include "decoders/pointer.h"
#include "decoders/rnn_decoder.h"
#include "decoders/semicrf.h"
#include "decoders/softmax.h"
#include "tensor/gradcheck.h"
#include "tensor/optim.h"
#include "tensor/ops.h"

namespace dlner::decoders {
namespace {

using text::Sentence;
using text::Span;
using text::TagScheme;
using text::TagSet;

Var RandomInput(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Tensor t({rows, cols});
  for (int i = 0; i < t.size(); ++i) t[i] = rng.Uniform(-1.0, 1.0);
  return Constant(std::move(t));
}

Sentence ToySentence() {
  Sentence s;
  s.tokens = {"John", "Smith", "visited", "Paris", "."};
  s.spans = {{0, 2, "PER"}, {3, 4, "LOC"}};
  return s;
}

// Trains a decoder on a single sentence with fixed encodings; the loss must
// collapse and the prediction must become exact (capacity sanity check).
void ExpectOverfits(TagDecoder* decoder, const Var& enc, const Sentence& gold,
                    int steps, Float lr) {
  Adam opt(decoder->Parameters(), lr);
  Float first_loss = 0.0, last_loss = 0.0;
  for (int i = 0; i < steps; ++i) {
    opt.ZeroGrad();
    Var loss = decoder->Loss(enc, gold);
    Backward(loss);
    opt.ClipGradNorm(5.0);
    opt.Step();
    if (i == 0) first_loss = loss->value[0];
    last_loss = loss->value[0];
  }
  EXPECT_LT(last_loss, first_loss);
  std::vector<Span> predicted = decoder->Predict(enc);
  std::vector<Span> expected = gold.spans;
  std::sort(expected.begin(), expected.end());
  std::sort(predicted.begin(), predicted.end());
  EXPECT_EQ(predicted, expected);
}

// --- Softmax ---

TEST(SoftmaxDecoderTest, LossMatchesManualCrossEntropy) {
  TagSet tags({"PER"}, TagScheme::kIo);  // tags: O, I-PER
  Rng rng(1);
  SoftmaxDecoder dec(2, &tags, &rng);
  Var enc = RandomInput(3, 2, 2);
  Sentence s;
  s.tokens = {"a", "b", "c"};
  s.spans = {{1, 2, "PER"}};
  Var loss = dec.Loss(enc, s);
  EXPECT_GT(loss->value[0], 0.0);
  // Uniform-logits cross entropy is ln(K); a fresh model should be near it.
  EXPECT_LT(loss->value[0], 3.0);
}

TEST(SoftmaxDecoderTest, OverfitsToy) {
  TagSet tags({"PER", "LOC"}, TagScheme::kBioes);
  Rng rng(3);
  SoftmaxDecoder dec(6, &tags, &rng);
  Var enc = RandomInput(5, 6, 4);
  ExpectOverfits(&dec, enc, ToySentence(), 150, 0.05);
}

// --- CRF ---

TEST(CrfDecoderTest, LogPartitionMatchesBruteForce) {
  TagSet tags({"A", "B"}, TagScheme::kIo);  // 3 tags
  Rng rng(5);
  CrfDecoder dec(4, &tags, &rng);
  Var enc = RandomInput(4, 4, 6);
  Var emissions = dec.Emissions(enc);
  const int t_len = 4, k = tags.size();

  // Enumerate all k^T paths.
  Float max_score = -1e18;
  std::vector<Float> scores;
  std::vector<int> path(t_len, 0);
  std::vector<int> best_path;
  while (true) {
    Var s = dec.PathScore(emissions, path);
    scores.push_back(s->value[0]);
    if (s->value[0] > max_score) {
      max_score = s->value[0];
      best_path = path;
    }
    int i = t_len - 1;
    while (i >= 0 && path[i] == k - 1) path[i--] = 0;
    if (i < 0) break;
    ++path[i];
  }
  Float lse = 0.0;
  for (Float s : scores) lse += std::exp(s - max_score);
  const Float brute_logz = max_score + std::log(lse);

  Var logz = dec.LogPartition(emissions);
  EXPECT_NEAR(logz->value[0], brute_logz, 1e-9);

  // Unconstrained Viterbi equals brute-force argmax (IO scheme: all
  // transitions valid, so constraints don't bite).
  std::vector<int> viterbi = dec.ViterbiPath(emissions->value);
  EXPECT_EQ(viterbi, best_path);
}

TEST(CrfDecoderTest, LossIsNonNegativeAndGradChecks) {
  TagSet tags({"PER"}, TagScheme::kBio);
  Rng rng(7);
  CrfDecoder dec(3, &tags, &rng);
  Rng data_rng(8);
  Tensor enc_t({4, 3});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = data_rng.Uniform(-1, 1);
  Var enc = Parameter(std::move(enc_t));
  Sentence s;
  s.tokens = {"a", "b", "c", "d"};
  s.spans = {{1, 3, "PER"}};
  Var loss = dec.Loss(enc, s);
  // NLL of one path among many must be positive.
  EXPECT_GT(loss->value[0], 0.0);
  std::vector<Var> inputs = dec.Parameters();
  inputs.push_back(enc);
  EXPECT_LT(MaxGradError([&] { return dec.Loss(enc, s); }, inputs), 1e-5);
}

TEST(CrfDecoderTest, ConstrainedViterbiRespectsScheme) {
  TagSet tags({"PER", "LOC"}, TagScheme::kBioes);
  Rng rng(9);
  CrfDecoder dec(4, &tags, &rng, /*constrained_decoding=*/true);
  // Random (untrained) weights across many random inputs: every decoded
  // sequence must still be scheme-valid.
  for (int trial = 0; trial < 20; ++trial) {
    Var enc = RandomInput(6, 4, 100 + trial);
    Var emissions = dec.Emissions(enc);
    std::vector<int> path = dec.ViterbiPath(emissions->value);
    EXPECT_TRUE(tags.IsValidStart(path[0]));
    for (size_t t = 1; t < path.size(); ++t) {
      EXPECT_TRUE(tags.IsValidTransition(path[t - 1], path[t]));
    }
    EXPECT_TRUE(tags.IsValidEnd(path.back()));
  }
}

TEST(CrfDecoderTest, OverfitsToy) {
  TagSet tags({"PER", "LOC"}, TagScheme::kBioes);
  Rng rng(11);
  CrfDecoder dec(6, &tags, &rng);
  Var enc = RandomInput(5, 6, 12);
  ExpectOverfits(&dec, enc, ToySentence(), 150, 0.05);
}

TEST(CrfDecoderTest, MarginalsMatchBruteForce) {
  TagSet tags({"A", "B"}, TagScheme::kIo);  // 3 tags
  Rng rng(41);
  CrfDecoder dec(3, &tags, &rng);
  Var enc = RandomInput(3, 3, 42);
  Var emissions = dec.Emissions(enc);
  const int t_len = 3, k = tags.size();

  // Brute force: p(y_t = j) over all k^T paths.
  std::vector<std::vector<Float>> brute(t_len, std::vector<Float>(k, 0.0));
  std::vector<int> path(t_len, 0);
  std::vector<Float> scores;
  std::vector<std::vector<int>> paths;
  while (true) {
    scores.push_back(dec.PathScore(emissions, path)->value[0]);
    paths.push_back(path);
    int i = t_len - 1;
    while (i >= 0 && path[i] == k - 1) path[i--] = 0;
    if (i < 0) break;
    ++path[i];
  }
  Float mx = scores[0];
  for (Float s : scores) mx = std::max(mx, s);
  Float z = 0.0;
  for (Float s : scores) z += std::exp(s - mx);
  for (size_t p = 0; p < paths.size(); ++p) {
    const Float prob = std::exp(scores[p] - mx) / z;
    for (int t = 0; t < t_len; ++t) brute[t][paths[p][t]] += prob;
  }

  Tensor marginals = dec.Marginals(emissions->value);
  for (int t = 0; t < t_len; ++t) {
    Float row_sum = 0.0;
    for (int j = 0; j < k; ++j) {
      EXPECT_NEAR(marginals.at(t, j), brute[t][j], 1e-9);
      row_sum += marginals.at(t, j);
    }
    EXPECT_NEAR(row_sum, 1.0, 1e-9);
  }
}

TEST(CrfDecoderTest, MarginalsPeakOnViterbiPathAfterTraining) {
  TagSet tags({"PER"}, TagScheme::kBio);
  Rng rng(43);
  CrfDecoder dec(4, &tags, &rng);
  Var enc = RandomInput(4, 4, 44);
  Sentence s;
  s.tokens = {"a", "b", "c", "d"};
  s.spans = {{1, 3, "PER"}};
  Adam opt(dec.Parameters(), 0.05);
  for (int i = 0; i < 120; ++i) {
    opt.ZeroGrad();
    Backward(dec.Loss(enc, s));
    opt.Step();
  }
  Var emissions = dec.Emissions(enc);
  Tensor marginals = dec.Marginals(emissions->value);
  std::vector<int> viterbi = dec.ViterbiPath(emissions->value);
  for (int t = 0; t < 4; ++t) {
    // After overfitting, the posterior concentrates on the decoded path.
    EXPECT_GT(marginals.at(t, viterbi[t]), 0.9);
  }
}

// --- Semi-CRF ---

TEST(SemiCrfTest, GoldSegmentationTilesSentence) {
  Rng rng(13);
  SemiCrfDecoder dec(4, {"PER", "LOC"}, 4, &rng);
  Sentence s = ToySentence();
  auto segs = dec.GoldSegmentation(s);
  int pos = 0;
  for (const auto& seg : segs) {
    EXPECT_EQ(seg.start, pos);
    pos = seg.end;
    if (seg.label == 0) {
      EXPECT_EQ(seg.end - seg.start, 1);
    }
  }
  EXPECT_EQ(pos, s.size());
}

TEST(SemiCrfTest, LogPartitionMatchesBruteForce) {
  Rng rng(15);
  SemiCrfDecoder dec(3, {"X", "Y"}, 3, &rng);  // labels: O, X, Y
  Var enc = RandomInput(4, 3, 16);
  const int t_len = 4;

  // Enumerate all segmentations (O restricted to length 1) recursively.
  std::vector<Float> scores;
  std::vector<SemiCrfDecoder::Segment> current;
  std::function<void(int)> recurse = [&](int pos) {
    if (pos == t_len) {
      Var s = dec.SegmentationScore(enc, current);
      scores.push_back(s->value[0]);
      return;
    }
    for (int len = 1; len <= std::min(3, t_len - pos); ++len) {
      for (int label = 0; label < dec.num_labels(); ++label) {
        if (label == 0 && len > 1) continue;
        current.push_back({pos, pos + len, label});
        recurse(pos + len);
        current.pop_back();
      }
    }
  };
  recurse(0);

  Float mx = -1e18;
  for (Float s : scores) mx = std::max(mx, s);
  Float lse = 0.0;
  for (Float s : scores) lse += std::exp(s - mx);
  const Float brute = mx + std::log(lse);

  EXPECT_NEAR(dec.LogPartition(enc)->value[0], brute, 1e-9);
}

TEST(SemiCrfTest, LossGradChecks) {
  Rng rng(17);
  SemiCrfDecoder dec(3, {"PER"}, 3, &rng);
  Rng data_rng(18);
  Tensor enc_t({4, 3});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = data_rng.Uniform(-1, 1);
  Var enc = Parameter(std::move(enc_t));
  Sentence s;
  s.tokens = {"a", "b", "c", "d"};
  s.spans = {{1, 3, "PER"}};
  std::vector<Var> inputs = dec.Parameters();
  inputs.push_back(enc);
  EXPECT_LT(MaxGradError([&] { return dec.Loss(enc, s); }, inputs), 1e-5);
}

TEST(SemiCrfTest, OverfitsToy) {
  Rng rng(19);
  SemiCrfDecoder dec(6, {"PER", "LOC"}, 4, &rng);
  Var enc = RandomInput(5, 6, 20);
  ExpectOverfits(&dec, enc, ToySentence(), 200, 0.05);
}

TEST(SemiCrfTest, PredictSegmentsRespectMaxLen) {
  Rng rng(21);
  SemiCrfDecoder dec(4, {"PER"}, 2, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    Var enc = RandomInput(7, 4, 300 + trial);
    for (const Span& sp : dec.Predict(enc)) {
      EXPECT_LE(sp.end - sp.start, 2);
    }
  }
}

// --- RNN decoder ---

TEST(RnnDecoderTest, OverfitsToy) {
  TagSet tags({"PER", "LOC"}, TagScheme::kBioes);
  Rng rng(23);
  RnnDecoder dec(6, &tags, 4, 10, &rng);
  Var enc = RandomInput(5, 6, 24);
  ExpectOverfits(&dec, enc, ToySentence(), 200, 0.03);
}

TEST(RnnDecoderTest, LossGradChecks) {
  TagSet tags({"PER"}, TagScheme::kBio);
  Rng rng(25);
  RnnDecoder dec(3, &tags, 3, 4, &rng);
  Rng data_rng(26);
  Tensor enc_t({3, 3});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = data_rng.Uniform(-1, 1);
  Var enc = Parameter(std::move(enc_t));
  Sentence s;
  s.tokens = {"a", "b", "c"};
  s.spans = {{0, 2, "PER"}};
  std::vector<Var> inputs = dec.Parameters();
  inputs.push_back(enc);
  EXPECT_LT(MaxGradError([&] { return dec.Loss(enc, s); }, inputs), 1e-5);
}

TEST(RnnDecoderTest, BeamWidthOneMatchesGreedy) {
  TagSet tags({"PER", "LOC"}, TagScheme::kBioes);
  Rng rng(51);
  RnnDecoder dec(4, &tags, 4, 8, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    Var enc = RandomInput(6, 4, 600 + trial);
    EXPECT_EQ(dec.PredictBeam(enc, 1), dec.Predict(enc));
  }
}

TEST(RnnDecoderTest, WiderBeamNeverDecreasesSequenceLogProb) {
  // The beam result's total log-probability must be >= the greedy one's.
  TagSet tags({"PER"}, TagScheme::kBio);
  Rng rng(53);
  RnnDecoder dec(3, &tags, 3, 6, &rng);
  // Score helper: NLL of treating a prediction as gold.
  auto nll = [&](const Var& enc, const std::vector<Span>& spans) {
    Sentence s;
    for (int t = 0; t < enc->value.rows(); ++t) s.tokens.push_back("w");
    s.spans = spans;
    return dec.Loss(enc, s)->value[0];
  };
  int beam_not_worse = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Var enc = RandomInput(5, 3, 700 + trial);
    const double greedy = nll(enc, dec.Predict(enc));
    const double beam = nll(enc, dec.PredictBeam(enc, 4));
    if (beam <= greedy + 1e-9) ++beam_not_worse;
  }
  // Teacher-forced NLL is a proxy (prefix feedback differs), so allow a
  // couple of inversions but require the beam to win overall.
  EXPECT_GE(beam_not_worse, 7);
}

// --- Pointer decoder ---

TEST(PointerDecoderTest, OverfitsToy) {
  Rng rng(27);
  PointerDecoder dec(6, {"PER", "LOC"}, 4, 10, &rng);
  Var enc = RandomInput(5, 6, 28);
  ExpectOverfits(&dec, enc, ToySentence(), 250, 0.03);
}

TEST(PointerDecoderTest, PredictionsTileTheSentence) {
  Rng rng(29);
  PointerDecoder dec(4, {"PER"}, 3, 6, &rng);
  for (int trial = 0; trial < 10; ++trial) {
    Var enc = RandomInput(8, 4, 400 + trial);
    std::vector<Span> spans = dec.Predict(enc);
    int prev_end = 0;
    for (const Span& sp : spans) {
      EXPECT_GE(sp.start, prev_end);
      EXPECT_LE(sp.end - sp.start, 3);
      prev_end = sp.end;
    }
  }
}

TEST(PointerDecoderTest, LossGradChecks) {
  Rng rng(31);
  PointerDecoder dec(3, {"PER"}, 3, 5, &rng);
  Rng data_rng(32);
  Tensor enc_t({4, 3});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = data_rng.Uniform(-1, 1);
  Var enc = Parameter(std::move(enc_t));
  Sentence s;
  s.tokens = {"a", "b", "c", "d"};
  s.spans = {{1, 3, "PER"}};
  std::vector<Var> inputs = dec.Parameters();
  inputs.push_back(enc);
  EXPECT_LT(MaxGradError([&] { return dec.Loss(enc, s); }, inputs), 1e-5);
}

}  // namespace
}  // namespace dlner::decoders
