// End-to-end integration tests: generate -> CoNLL round trip -> train ->
// evaluate -> persist -> restore, across corpus genres and architectures.
#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "text/conll.h"

namespace dlner {
namespace {

using core::NerConfig;
using core::Pipeline;
using core::TrainConfig;

NerConfig FastConfig() {
  NerConfig config;
  config.word_dim = 14;
  config.hidden_dim = 12;
  config.seed = 3;
  return config;
}

TrainConfig FastTrain() {
  TrainConfig tc;
  tc.epochs = 6;
  tc.lr = 0.02;
  return tc;
}

// Flat genres must be learnable end-to-end through the pipeline facade.
class GenrePipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GenrePipelineTest, TrainsThroughConllRoundTrip) {
  const std::string name = GetParam();
  text::Corpus corpus = data::MakeDataset(name, 140, 11);
  // Round-trip through the CoNLL interchange format first: what you train
  // on is exactly what a user would load from disk.
  std::vector<std::string> types;
  {
    std::set<std::string> seen;
    for (const auto& s : corpus.sentences) {
      for (const auto& sp : s.spans) seen.insert(sp.type);
    }
    types.assign(seen.begin(), seen.end());
  }
  text::TagSet tags(types, text::TagScheme::kBioes);
  const std::string path = ::testing::TempDir() + "/" + name + ".conll";
  ASSERT_TRUE(text::WriteConllFile(path, corpus, tags));
  text::Corpus loaded;
  ASSERT_TRUE(text::ReadConllFile(path, &loaded));
  ASSERT_EQ(loaded.size(), corpus.size());

  data::DataSplit split = data::SplitCorpus(loaded, 0.75, 0.0, 5);
  auto pipeline =
      Pipeline::Train(FastConfig(), FastTrain(), split.train, nullptr, types);
  const double f1 = pipeline->Evaluate(split.test).micro.f1();
  EXPECT_GT(f1, 0.45) << name;
}

INSTANTIATE_TEST_SUITE_P(Genres, GenrePipelineTest,
                         ::testing::Values("conll-like", "ontonotes-like",
                                           "wnut-like", "bio-like"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Architecture sweep through save/load: a restored pipeline must reproduce
// the original's predictions exactly for every decoder family.
class PersistenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PersistenceTest, RestoredModelPredictsIdentically) {
  NerConfig config = FastConfig();
  config.decoder = GetParam();
  text::Corpus corpus = data::MakeDataset("conll-like", 60, 13);
  auto pipeline = Pipeline::Train(config, FastTrain(), corpus, nullptr,
                                  data::EntityTypesFor(data::Genre::kNews));
  const std::string path =
      ::testing::TempDir() + "/persist_" + GetParam() + ".bin";
  ASSERT_TRUE(pipeline->Save(path));
  auto loaded = Pipeline::Load(path);
  ASSERT_NE(loaded, nullptr);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(loaded->Tag(corpus.sentences[i].tokens),
              pipeline->Tag(corpus.sentences[i].tokens))
        << "sentence " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Decoders, PersistenceTest,
                         ::testing::Values("softmax", "crf", "semicrf", "rnn",
                                           "pointer", "fofe"),
                         [](const auto& info) { return info.param; });

TEST(SgnsIntegrationTest, PretrainedVectorsImproveSmallDataModel) {
  // 60 labeled sentences, 1500 unlabeled: pre-training must help.
  const auto genre = data::Genre::kNews;
  text::Corpus small = data::MakeDataset("conll-like", 60, 17);
  data::GenOptions test_opts;
  test_opts.num_sentences = 100;
  test_opts.seed = 18;
  test_opts.oov_entity_fraction = 0.3;
  text::Corpus test = data::GenerateCorpus(genre, test_opts);

  NerConfig config = FastConfig();
  config.word_dim = 16;
  TrainConfig tc = FastTrain();
  tc.epochs = 8;

  core::NerModel random_init(config, small,
                             data::EntityTypesFor(genre));
  {
    core::Trainer trainer(&random_init, tc);
    trainer.Train(small, nullptr);
  }

  auto unlabeled = data::GenerateUnlabeledText(genre, 1500, 19);
  embeddings::SkipGramModel::Config sgns_cfg;
  sgns_cfg.dim = 16;
  sgns_cfg.epochs = 3;
  auto sgns = embeddings::SkipGramModel::Train(unlabeled, sgns_cfg);
  core::Resources res;
  res.sgns = &sgns;
  NerConfig pre_config = config;
  pre_config.seed = 21;
  core::NerModel pretrained(pre_config, small, data::EntityTypesFor(genre),
                            res);
  {
    core::Trainer trainer(&pretrained, tc);
    trainer.Train(small, nullptr);
  }
  // Pre-trained input should not be (much) worse and is typically better.
  EXPECT_GT(pretrained.Evaluate(test).micro.f1(),
            random_init.Evaluate(test).micro.f1() - 0.02);
}

TEST(SchemeIntegrationTest, AllSchemesLearnTheTask) {
  text::Corpus corpus = data::MakeDataset("conll-like", 120, 23);
  data::DataSplit split = data::SplitCorpus(corpus, 0.75, 0.0, 24);
  for (const std::string scheme : {"io", "bio", "bioes"}) {
    NerConfig config = FastConfig();
    config.scheme = scheme;
    auto pipeline = Pipeline::Train(config, FastTrain(), split.train, nullptr,
                                    data::EntityTypesFor(data::Genre::kNews));
    EXPECT_GT(pipeline->Evaluate(split.test).micro.f1(), 0.5) << scheme;
  }
}

}  // namespace
}  // namespace dlner
