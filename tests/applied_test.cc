#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "applied/active.h"
#include "applied/adversarial.h"
#include "applied/distant.h"
#include "applied/multitask.h"
#include "applied/nested.h"
#include "applied/transfer.h"
#include "data/dataset.h"

namespace dlner::applied {
namespace {

using data::Genre;

core::NerConfig SmallConfig(uint64_t seed = 5) {
  core::NerConfig config;
  config.word_dim = 12;
  config.hidden_dim = 10;
  config.input_dropout = 0.1;
  config.seed = seed;
  return config;
}

core::TrainConfig FastTrain(int epochs) {
  core::TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = 0.02;
  return tc;
}

text::Corpus SmallNews(int n, uint64_t seed) {
  data::GenOptions opts;
  opts.num_sentences = n;
  opts.seed = seed;
  return data::GenerateCorpus(Genre::kNews, opts);
}

// --- Multi-task ---

TEST(MultiTaskTest, LmTermAddsToTrainingLoss) {
  text::Corpus corpus = SmallNews(20, 1);
  MultiTaskLmModel model(SmallConfig(), corpus,
                         data::EntityTypesFor(Genre::kNews), 0.5);
  const text::Sentence& s = corpus.sentences[0];
  // Training loss includes the LM term; eval loss does not.
  const double train_loss = model.Loss(s, /*training=*/true)->value[0];
  const double eval_loss = model.Loss(s, /*training=*/false)->value[0];
  EXPECT_GT(train_loss, eval_loss);
}

TEST(MultiTaskTest, HasExtraParametersAndTrains) {
  text::Corpus corpus = SmallNews(30, 2);
  core::NerModel plain(SmallConfig(), corpus,
                       data::EntityTypesFor(Genre::kNews));
  MultiTaskLmModel mtl(SmallConfig(), corpus,
                       data::EntityTypesFor(Genre::kNews), 0.3);
  EXPECT_GT(mtl.ParameterCount(), plain.ParameterCount());
  core::Trainer trainer(&mtl, FastTrain(3));
  core::TrainResult r = trainer.Train(corpus, nullptr);
  EXPECT_LT(r.history.back().train_loss, r.history.front().train_loss);
}

TEST(MultiTaskTest, ZeroWeightMatchesPlainLoss) {
  text::Corpus corpus = SmallNews(10, 3);
  core::NerConfig config = SmallConfig();
  config.input_dropout = 0.0;  // make train/eval passes deterministic
  MultiTaskLmModel model(config, corpus,
                         data::EntityTypesFor(Genre::kNews), 0.0);
  const text::Sentence& s = corpus.sentences[0];
  EXPECT_DOUBLE_EQ(model.Loss(s, true)->value[0],
                   model.Loss(s, false)->value[0]);
}

TEST(BoundaryMultiTaskTest, AuxHeadDetectsUntypedBoundaries) {
  text::Corpus corpus = SmallNews(60, 41);
  MultiTaskBoundaryModel model(SmallConfig(), corpus,
                               data::EntityTypesFor(Genre::kNews),
                               /*boundary_weight=*/0.5);
  core::Trainer trainer(&model, FastTrain(6));
  trainer.Train(corpus, nullptr);
  // The auxiliary head must recover most gold boundaries (untyped).
  int tp = 0, total = 0;
  for (int i = 0; i < 20; ++i) {
    const auto& s = corpus.sentences[i];
    auto predicted = model.PredictBoundaries(s.tokens);
    std::set<std::pair<int, int>> pred_set;
    for (const auto& sp : predicted) pred_set.insert({sp.start, sp.end});
    for (const auto& g : s.spans) {
      ++total;
      if (pred_set.count({g.start, g.end}) > 0) ++tp;
    }
  }
  EXPECT_GT(static_cast<double>(tp) / total, 0.7);
}

TEST(BoundaryMultiTaskTest, TrainingLossIncludesAuxTerm) {
  text::Corpus corpus = SmallNews(10, 42);
  core::NerConfig config = SmallConfig();
  config.input_dropout = 0.0;
  MultiTaskBoundaryModel model(config, corpus,
                               data::EntityTypesFor(Genre::kNews), 0.5);
  const auto& s = corpus.sentences[0];
  EXPECT_GT(model.Loss(s, true)->value[0], model.Loss(s, false)->value[0]);
}

// --- Transfer ---

TEST(TransferTest, CopyMatchingParametersByNameAndShape) {
  text::Corpus source_corpus = SmallNews(30, 4);
  text::Corpus target_corpus = SmallNews(10, 5);
  core::NerModel source(SmallConfig(7), source_corpus,
                        data::EntityTypesFor(Genre::kNews));
  core::NerModel target(SmallConfig(8), target_corpus,
                        data::EntityTypesFor(Genre::kNews));
  const int copied = CopyMatchingParameters(source, &target);
  // Encoder and decoder shapes match (same config, same label set); the
  // word embedding tables have different vocab sizes and are skipped.
  EXPECT_GT(copied, 0);
  // Encoder parameters actually carried over.
  const auto src_enc = source.encoder()->Parameters();
  const auto tgt_enc = target.encoder()->Parameters();
  ASSERT_EQ(src_enc.size(), tgt_enc.size());
  for (size_t i = 0; i < src_enc.size(); ++i) {
    for (int j = 0; j < src_enc[i]->value.size(); ++j) {
      EXPECT_DOUBLE_EQ(tgt_enc[i]->value[j], src_enc[i]->value[j]);
    }
  }
}

TEST(TransferTest, FineTuneModelReusesVocabulary) {
  text::Corpus source_corpus = SmallNews(30, 6);
  core::NerModel source(SmallConfig(), source_corpus,
                        data::EntityTypesFor(Genre::kNews));
  auto target = MakeFineTuneModel(source, SmallConfig(),
                                  data::EntityTypesFor(Genre::kNews));
  EXPECT_EQ(target->word_vocab().size(), source.word_vocab().size());
  // Word embedding table transfers because vocabularies match.
  const auto& src_rep = source.representation()->Parameters();
  const auto& tgt_rep = target->representation()->Parameters();
  ASSERT_EQ(src_rep.size(), tgt_rep.size());
  EXPECT_DOUBLE_EQ(tgt_rep[0]->value[0], src_rep[0]->value[0]);
}

TEST(TransferTest, DifferentLabelSetSkipsDecoder) {
  text::Corpus source_corpus = SmallNews(20, 7);
  core::NerModel source(SmallConfig(), source_corpus,
                        data::EntityTypesFor(Genre::kNews));
  // Bio types: different tag-set size -> decoder projection shape differs.
  auto target = MakeFineTuneModel(source, SmallConfig(),
                                  data::EntityTypesFor(Genre::kBio));
  const auto src_dec = source.decoder()->Parameters();
  const auto tgt_dec = target->decoder()->Parameters();
  // Shapes differ so values must NOT have been copied.
  EXPECT_NE(src_dec[0]->value.size(), tgt_dec[0]->value.size());
}

TEST(TransferTest, FrozenModulesDoNotMove) {
  text::Corpus corpus = SmallNews(15, 8);
  core::NerModel model(SmallConfig(), corpus,
                       data::EntityTypesFor(Genre::kNews));
  FreezeModules(&model, /*freeze_representation=*/true,
                /*freeze_encoder=*/true);
  const Tensor before = model.encoder()->Parameters()[0]->value;
  core::Trainer trainer(&model, FastTrain(2));
  trainer.Train(corpus, nullptr);
  const Tensor after = model.encoder()->Parameters()[0]->value;
  for (int i = 0; i < before.size(); ++i) {
    EXPECT_DOUBLE_EQ(after[i], before[i]);
  }
  // Decoder still moved.
  EXPECT_GT(model.decoder()->Parameters()[0]->grad.size(), 0);
}

// --- Active learning ---

TEST(ActiveTest, RunsAndGrowsLabeledSet) {
  text::Corpus pool = SmallNews(60, 9);
  text::Corpus test = SmallNews(20, 10);
  core::NerModel model(SmallConfig(), pool,
                       data::EntityTypesFor(Genre::kNews));
  ActiveConfig config;
  config.seed_size = 10;
  config.batch_size = 10;
  config.rounds = 3;
  config.epochs_per_round = 2;
  config.train = FastTrain(1);
  ActiveLearner learner(&model, config);
  auto history = learner.Run(pool, test);
  ASSERT_EQ(history.size(), 4u);
  EXPECT_EQ(history[0].labeled_sentences, 10);
  EXPECT_EQ(history[3].labeled_sentences, 40);
  EXPECT_GT(history[3].test_f1, history[0].test_f1 - 0.05);
}

TEST(ActiveTest, UncertaintyIsNonNegative) {
  text::Corpus pool = SmallNews(10, 11);
  core::NerModel model(SmallConfig(), pool,
                       data::EntityTypesFor(Genre::kNews));
  ActiveConfig config;
  config.train = FastTrain(1);
  ActiveLearner learner(&model, config);
  for (const auto& s : pool.sentences) {
    EXPECT_GE(learner.Uncertainty(s), -1e-9);
  }
}

// --- Adversarial ---

TEST(AdversarialTest, PerturbationHasEpsilonNorm) {
  text::Corpus corpus = SmallNews(10, 12);
  core::NerModel model(SmallConfig(), corpus,
                       data::EntityTypesFor(Genre::kNews));
  AdversarialConfig adv;
  adv.epsilon = 0.25;
  AdversarialTrainer trainer(&model, FastTrain(1), adv);
  Tensor eta = trainer.ComputePerturbation(corpus.sentences[0]);
  EXPECT_NEAR(eta.Norm(), 0.25, 1e-9);
}

TEST(AdversarialTest, PerturbationIncreasesLoss) {
  text::Corpus corpus = SmallNews(20, 13);
  core::NerModel model(SmallConfig(), corpus,
                       data::EntityTypesFor(Genre::kNews));
  // Brief training so gradients are meaningful.
  core::Trainer warm(&model, FastTrain(2));
  warm.Train(corpus, nullptr);

  AdversarialConfig adv;
  adv.epsilon = 0.5;
  AdversarialTrainer trainer(&model, FastTrain(1), adv);
  int increased = 0, total = 0;
  for (int i = 0; i < 10; ++i) {
    const text::Sentence& s = corpus.sentences[i];
    Tensor eta = trainer.ComputePerturbation(s);
    // Evaluate loss without dropout for a clean comparison.
    Var rep_clean = model.Represent(s.tokens, false);
    const double clean =
        model.LossFromRepresentation(rep_clean, s, false)->value[0];
    Var rep_adv = Add(model.Represent(s.tokens, false), Constant(eta));
    const double perturbed =
        model.LossFromRepresentation(rep_adv, s, false)->value[0];
    ++total;
    if (perturbed > clean) ++increased;
  }
  // The FGSM direction must raise the loss in the large majority of cases.
  EXPECT_GE(increased, total - 2);
}

TEST(AdversarialTest, TrainingDecreasesLoss) {
  text::Corpus corpus = SmallNews(20, 14);
  core::NerModel model(SmallConfig(), corpus,
                       data::EntityTypesFor(Genre::kNews));
  AdversarialConfig adv;
  AdversarialTrainer trainer(&model, FastTrain(1), adv);
  const double l1 = trainer.RunEpoch(corpus);
  trainer.Train(corpus, 3);
  const double l2 = trainer.RunEpoch(corpus);
  EXPECT_LT(l2, l1);
}

// --- Distant supervision / RL ---

TEST(DistantTest, SelectorRunsAndRecordsEpisodes) {
  text::Corpus clean = SmallNews(60, 15);
  data::DataSplit split = data::SplitCorpus(clean, 0.6, 0.2, 3);
  text::Corpus noisy = data::CorruptLabels(
      split.train, 0.4, data::EntityTypesFor(Genre::kNews), 7);

  DistantConfig config;
  config.episodes = 2;
  config.warmup_epochs = 1;
  config.episode_epochs = 1;
  config.final_epochs = 2;
  config.model_config = SmallConfig();
  config.train = FastTrain(2);
  InstanceSelector selector(config);
  DistantResult result =
      selector.Run(noisy, split.dev, split.test,
                   data::EntityTypesFor(Genre::kNews));
  EXPECT_EQ(result.episode_rewards.size(), 2u);
  EXPECT_EQ(result.keep_fractions.size(), 2u);
  EXPECT_GE(result.f1_selected, 0.0);
  EXPECT_GE(result.f1_all_data, 0.0);
  EXPECT_EQ(result.policy_weights.size(), 3u);
}

// --- Nested NER ---

TEST(NestedTest, SplitLevelsPeelsInnermostFirst) {
  text::Corpus corpus;
  // "University of Singapore" with inner LOC.
  corpus.sentences.push_back(
      {{"University", "of", "Singapore", "opened"},
       {{0, 3, "ORG"}, {2, 3, "LOC"}}});
  auto levels = SplitNestingLevels(corpus, 3);
  ASSERT_EQ(levels.size(), 3u);
  ASSERT_EQ(levels[0].sentences[0].spans.size(), 1u);
  EXPECT_EQ(levels[0].sentences[0].spans[0].type, "LOC");
  ASSERT_EQ(levels[1].sentences[0].spans.size(), 1u);
  EXPECT_EQ(levels[1].sentences[0].spans[0].type, "ORG");
  EXPECT_TRUE(levels[2].sentences[0].spans.empty());
}

TEST(NestedTest, FlatCorpusFitsInLevelZero) {
  text::Corpus corpus;
  corpus.sentences.push_back(
      {{"a", "b", "c"}, {{0, 1, "X"}, {2, 3, "Y"}}});
  auto levels = SplitNestingLevels(corpus);
  EXPECT_EQ(levels[0].sentences[0].spans.size(), 2u);
  EXPECT_TRUE(levels[1].sentences[0].spans.empty());
}

TEST(NestedTest, LevelsAreFlatAndCoverAllSpans) {
  data::GenOptions opts;
  opts.num_sentences = 60;
  opts.seed = 16;
  text::Corpus corpus = data::GenerateCorpus(Genre::kNested, opts);
  auto levels = SplitNestingLevels(corpus);
  int covered = 0;
  for (size_t l = 0; l < levels.size(); ++l) {
    for (const auto& s : levels[l].sentences) {
      EXPECT_TRUE(text::SpansAreFlat(s.spans));
      covered += static_cast<int>(s.spans.size());
    }
  }
  EXPECT_EQ(covered, corpus.EntityCount());
}

TEST(NestedTest, LayeredModelRecoversNestedMentions) {
  data::GenOptions opts;
  opts.num_sentences = 80;
  opts.seed = 17;
  text::Corpus corpus = data::GenerateCorpus(Genre::kNested, opts);
  data::DataSplit split = data::SplitCorpus(corpus, 0.75, 0.0, 4);

  LayeredNerModel layered(SmallConfig(),
                          data::EntityTypesFor(Genre::kNested));
  layered.Train(split.train, FastTrain(5));
  EXPECT_GE(layered.num_levels(), 2);
  eval::ExactResult result = layered.Evaluate(split.test);
  EXPECT_GT(result.micro.f1(), 0.4);
}

}  // namespace
}  // namespace dlner::applied
