#include <cmath>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/flags.h"
#include "core/pipeline.h"
#include "data/dataset.h"

namespace dlner::core {
namespace {

using data::Genre;

NerConfig SmallConfig() {
  NerConfig config;
  config.word_dim = 12;
  config.hidden_dim = 10;
  config.input_dropout = 0.1;
  config.seed = 5;
  return config;
}

TrainConfig FastTrain(int epochs) {
  TrainConfig tc;
  tc.epochs = epochs;
  tc.lr = 0.02;
  return tc;
}

text::Corpus SmallNews(int n, uint64_t seed) {
  data::GenOptions opts;
  opts.num_sentences = n;
  opts.seed = seed;
  return data::GenerateCorpus(Genre::kNews, opts);
}

TEST(ConfigTest, DescribeNamesAllParts) {
  NerConfig c = SmallConfig();
  c.use_char_cnn = true;
  c.use_shape = true;
  c.encoder = "idcnn";
  c.decoder = "semicrf";
  const std::string desc = c.Describe();
  EXPECT_NE(desc.find("word"), std::string::npos);
  EXPECT_NE(desc.find("charCNN"), std::string::npos);
  EXPECT_NE(desc.find("shape"), std::string::npos);
  EXPECT_NE(desc.find("idcnn"), std::string::npos);
  EXPECT_NE(desc.find("semicrf"), std::string::npos);
}

TEST(ConfigTest, SerializationRoundTrip) {
  NerConfig c = SmallConfig();
  c.use_char_rnn = true;
  c.encoder = "transformer";
  c.idcnn_dilations = {1, 3, 9};
  c.scheme = "bio";
  c.seed = 123456789ULL;
  std::stringstream ss;
  WriteConfig(ss, c);
  NerConfig back;
  ASSERT_TRUE(ReadConfig(ss, &back));
  EXPECT_EQ(back.use_char_rnn, true);
  EXPECT_EQ(back.encoder, "transformer");
  EXPECT_EQ(back.idcnn_dilations, (std::vector<int>{1, 3, 9}));
  EXPECT_EQ(back.scheme, "bio");
  EXPECT_EQ(back.seed, 123456789ULL);
}

TEST(ConfigTest, MalformedStreamFails) {
  std::stringstream ss;
  ss << "junk";
  NerConfig c;
  EXPECT_FALSE(ReadConfig(ss, &c));
}

// Every (encoder, decoder) cell of the taxonomy must assemble, produce a
// finite loss, and predict valid flat spans.
class TaxonomyTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::string>> {};

TEST_P(TaxonomyTest, BuildsAndRuns) {
  NerConfig config = SmallConfig();
  config.encoder = std::get<0>(GetParam());
  config.decoder = std::get<1>(GetParam());
  text::Corpus corpus = SmallNews(20, 2);
  NerModel model(config, corpus, data::EntityTypesFor(Genre::kNews));
  EXPECT_GT(model.ParameterCount(), 0);

  const text::Sentence& s = corpus.sentences[0];
  Var loss = model.Loss(s, /*training=*/true);
  EXPECT_TRUE(std::isfinite(loss->value[0]));
  EXPECT_GT(loss->value[0], 0.0);

  std::vector<text::Span> spans = model.Predict(s.tokens);
  EXPECT_TRUE(text::SpansAreValid(spans, s.size()));
  EXPECT_TRUE(text::SpansAreFlat(spans));
}

INSTANTIATE_TEST_SUITE_P(
    Cells, TaxonomyTest,
    ::testing::Combine(::testing::Values("mlp", "cnn", "idcnn", "bilstm",
                                         "bigru", "transformer", "brnn"),
                       ::testing::Values("softmax", "crf", "semicrf", "rnn",
                                         "pointer", "fofe")),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" + std::get<1>(info.param);
    });

TEST(NerModelTest, AllInputFeaturesCompose) {
  NerConfig config = SmallConfig();
  config.use_char_cnn = true;
  config.use_char_rnn = true;
  config.use_shape = true;
  config.use_gazetteer = true;
  text::Corpus corpus = SmallNews(20, 3);
  data::Gazetteer gaz = data::Gazetteer::FromCorpus(corpus, 1.0, 1);
  Resources res;
  res.gazetteer = &gaz;
  NerModel model(config, corpus, data::EntityTypesFor(Genre::kNews), res);
  Var loss = model.Loss(corpus.sentences[0]);
  EXPECT_TRUE(std::isfinite(loss->value[0]));
}

TEST(NerModelDeathTest, MissingResourceAborts) {
  NerConfig config = SmallConfig();
  config.use_gazetteer = true;
  text::Corpus corpus = SmallNews(5, 4);
  EXPECT_DEATH(NerModel(config, corpus, data::EntityTypesFor(Genre::kNews)),
               "gazetteer");
}

TEST(TrainerTest, LossDecreasesAndF1Improves) {
  text::Corpus corpus = SmallNews(80, 5);
  data::DataSplit split = data::SplitCorpus(corpus, 0.7, 0.0, 1);
  NerConfig config = SmallConfig();
  NerModel model(config, split.train, data::EntityTypesFor(Genre::kNews));

  const double f1_before = model.Evaluate(split.test).micro.f1();
  Trainer trainer(&model, FastTrain(6));
  TrainResult result = trainer.Train(split.train, nullptr);
  ASSERT_EQ(result.history.size(), 6u);
  EXPECT_LT(result.history.back().train_loss,
            result.history.front().train_loss);
  const double f1_after = model.Evaluate(split.test).micro.f1();
  EXPECT_GT(f1_after, f1_before);
  EXPECT_GT(f1_after, 0.5);
}

TEST(TrainerTest, EarlyStoppingHonorsPatience) {
  text::Corpus corpus = SmallNews(30, 6);
  NerConfig config = SmallConfig();
  NerModel model(config, corpus, data::EntityTypesFor(Genre::kNews));
  TrainConfig tc = FastTrain(50);
  tc.patience = 2;
  Trainer trainer(&model, tc);
  TrainResult result = trainer.Train(corpus, &corpus);
  // With patience 2 on a tiny corpus the run must stop well before 50.
  EXPECT_LT(result.history.size(), 50u);
  EXPECT_GE(result.best_dev_f1, 0.0);
  EXPECT_GE(result.best_epoch, 0);
}

TEST(TrainerTest, TrainRestoresBestEpochParameters) {
  text::Corpus corpus = SmallNews(30, 11);
  NerConfig config = SmallConfig();
  NerModel model(config, corpus, data::EntityTypesFor(Genre::kNews));
  TrainConfig tc = FastTrain(40);
  tc.lr = 0.05;  // deliberately jumpy so late epochs regress
  tc.patience = 1;
  Trainer trainer(&model, tc);
  TrainResult result = trainer.Train(corpus, &corpus);
  ASSERT_GE(result.best_epoch, 0);
  // The returned model must carry best-epoch weights: re-evaluating the dev
  // corpus reproduces best_dev_f1 exactly, even though the run continued
  // past the best epoch before the patience break.
  EXPECT_GT(result.history.size(), static_cast<size_t>(result.best_epoch) + 1);
  EXPECT_LE(result.history.back().dev_f1, result.best_dev_f1);
  EXPECT_DOUBLE_EQ(model.Evaluate(corpus).micro.f1(), result.best_dev_f1);
}

TEST(TrainerTest, IncrementalTrainEpochs) {
  text::Corpus corpus = SmallNews(20, 7);
  NerConfig config = SmallConfig();
  NerModel model(config, corpus, data::EntityTypesFor(Genre::kNews));
  Trainer trainer(&model, FastTrain(1));
  const double l1 = trainer.TrainEpochs(corpus, 1);
  const double l2 = trainer.TrainEpochs(corpus, 3);
  EXPECT_LT(l2, l1);
}

TEST(PipelineTest, TrainTagAndEvaluate) {
  text::Corpus corpus = SmallNews(60, 8);
  data::DataSplit split = data::SplitCorpus(corpus, 0.8, 0.0, 2);
  auto pipeline =
      Pipeline::Train(SmallConfig(), FastTrain(5), split.train, nullptr,
                      data::EntityTypesFor(Genre::kNews));
  ASSERT_NE(pipeline, nullptr);
  EXPECT_GT(pipeline->Evaluate(split.test).micro.f1(), 0.4);
  text::Sentence tagged = pipeline->TagText("Maria Garcia visited Boston .");
  EXPECT_EQ(tagged.size(), 5);
}

TEST(PipelineTest, SaveLoadPreservesPredictions) {
  text::Corpus corpus = SmallNews(40, 9);
  auto pipeline = Pipeline::Train(SmallConfig(), FastTrain(3), corpus,
                                  nullptr,
                                  data::EntityTypesFor(Genre::kNews));
  const std::string path = ::testing::TempDir() + "/dlner_pipeline.bin";
  ASSERT_TRUE(pipeline->Save(path));
  auto loaded = Pipeline::Load(path);
  ASSERT_NE(loaded, nullptr);
  for (int i = 0; i < 10; ++i) {
    const auto& tokens = corpus.sentences[i].tokens;
    EXPECT_EQ(pipeline->Tag(tokens), loaded->Tag(tokens)) << "sentence " << i;
  }
}

TEST(PipelineTest, SaveLoadWithExternalResources) {
  // Checkpoint format v2: resource-backed models serialize their resources
  // into the checkpoint (full round-trips in serialize_test.cc).
  text::Corpus corpus = SmallNews(15, 10);
  data::Gazetteer gaz = data::Gazetteer::FromCorpus(corpus, 1.0, 1);
  Resources res;
  res.gazetteer = &gaz;
  NerConfig config = SmallConfig();
  config.use_gazetteer = true;
  auto pipeline = Pipeline::Train(config, FastTrain(1), corpus, nullptr,
                                  data::EntityTypesFor(Genre::kNews), res);
  const std::string path = ::testing::TempDir() + "/dlner_gaz_pipeline.bin";
  ASSERT_TRUE(pipeline->Save(path));
  auto loaded = Pipeline::Load(path);
  ASSERT_NE(loaded, nullptr);
  ASSERT_NE(loaded->resources().gazetteer, nullptr);
  EXPECT_EQ(loaded->resources().gazetteer->size(), gaz.size());
  for (int i = 0; i < 5; ++i) {
    const auto& tokens = corpus.sentences[i].tokens;
    EXPECT_EQ(pipeline->Tag(tokens), loaded->Tag(tokens)) << "sentence " << i;
  }
}

TEST(PipelineTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  {
    std::ofstream os(path);
    os << "not a pipeline";
  }
  EXPECT_EQ(Pipeline::Load(path), nullptr);
  EXPECT_EQ(Pipeline::Load("/nonexistent/file.bin"), nullptr);
}

// ---------------------------------------------------------------------------
// Checked flag parsing (core/flags.h). The old tool parser turned garbage
// into 0 via atoi/atof, truncated uint64 seeds through int, and silently
// accepted unknown flags; these tests pin the strict behavior.

TEST(FlagsTest, ParseIntAcceptsOnlyWholeIntegers) {
  int v = -1;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
  for (const char* bad : {"", "abc", "12x", "x12", "1.5", "1 ", " 1",
                          "2147483648", "-2147483649", "0x10"}) {
    v = 1234;
    EXPECT_FALSE(ParseInt(bad, &v)) << bad;
    EXPECT_EQ(v, 1234) << bad << " modified *out";
  }
}

TEST(FlagsTest, ParseUInt64HoldsFullRangeAndRejectsSigns) {
  std::uint64_t v = 0;
  // The original --seed path went through int and truncated this.
  EXPECT_TRUE(ParseUInt64("18446744073709551615", &v));
  EXPECT_EQ(v, 18446744073709551615ULL);
  EXPECT_TRUE(ParseUInt64("9223372036854775808", &v));  // > INT64_MAX
  EXPECT_EQ(v, 9223372036854775808ULL);
  for (const char* bad :
       {"", "-1", "+1", "18446744073709551616", "seed", "1e3"}) {
    EXPECT_FALSE(ParseUInt64(bad, &v)) << bad;
  }
}

TEST(FlagsTest, ParseDoubleRejectsGarbageOverflowAndNan) {
  double v = 0.0;
  EXPECT_TRUE(ParseDouble("0.015", &v));
  EXPECT_DOUBLE_EQ(v, 0.015);
  EXPECT_TRUE(ParseDouble("-2e-3", &v));
  EXPECT_DOUBLE_EQ(v, -2e-3);
  for (const char* bad : {"", "abc", "0.5x", "1e999", "nan", "0,5"}) {
    EXPECT_FALSE(ParseDouble(bad, &v)) << bad;
  }
}

TEST(FlagsTest, ParseRejectsUnknownFlagsAndMissingValues) {
  const FlagSpec spec{{"threads", FlagKind::kValue},
                      {"verbose", FlagKind::kBool},
                      {"gazetteer", FlagKind::kOptionalValue}};
  {
    // The typo the old parser silently ignored.
    const char* argv[] = {"dlner", "--thread", "4"};
    Args args;
    EXPECT_FALSE(args.Parse(3, const_cast<char* const*>(argv), 1, spec));
    EXPECT_NE(args.error().find("--thread"), std::string::npos);
  }
  {
    // The old parser stored the sentinel "true" here and atoi'd it to 0.
    const char* argv[] = {"dlner", "--threads", "--verbose"};
    Args args;
    EXPECT_FALSE(args.Parse(3, const_cast<char* const*>(argv), 1, spec));
    EXPECT_NE(args.error().find("requires a value"), std::string::npos);
  }
  {
    const char* argv[] = {"dlner", "stray", "--verbose"};
    Args args;
    EXPECT_FALSE(args.Parse(3, const_cast<char* const*>(argv), 1, spec));
    EXPECT_NE(args.error().find("stray"), std::string::npos);
  }
}

TEST(FlagsTest, ParseHandlesKindsAndTypedGetters) {
  const FlagSpec spec{{"threads", FlagKind::kValue},
                      {"seed", FlagKind::kValue},
                      {"lr", FlagKind::kValue},
                      {"verbose", FlagKind::kBool},
                      {"gazetteer", FlagKind::kOptionalValue}};
  const char* argv[] = {"dlner",      "--threads", "4",    "--verbose",
                        "--gazetteer", "--seed",   "9223372036854775809",
                        "--lr",       "0.02"};
  Args args;
  ASSERT_TRUE(args.Parse(9, const_cast<char* const*>(argv), 1, spec))
      << args.error();
  EXPECT_EQ(args.GetInt("threads", -1), 4);
  EXPECT_TRUE(args.Has("verbose"));
  // Bare optional flag stores the sentinel, not the following flag's name.
  EXPECT_EQ(args.Get("gazetteer"), "true");
  // Seeds above INT_MAX survive intact (the old GetInt path truncated).
  EXPECT_EQ(args.GetUInt64("seed", 0), 9223372036854775809ULL);
  EXPECT_DOUBLE_EQ(args.GetDouble("lr", 0.0), 0.02);
  // Absent flags fall back to defaults.
  EXPECT_EQ(args.GetInt("missing", 7), 7);
  EXPECT_EQ(args.GetUInt64("missing", 7), 7u);
  EXPECT_DOUBLE_EQ(args.GetDouble("missing", 0.5), 0.5);
}

TEST(FlagsTest, OptionalValueConsumesNonFlagToken) {
  const FlagSpec spec{{"gazetteer", FlagKind::kOptionalValue}};
  const char* argv[] = {"dlner", "--gazetteer", "0.7"};
  Args args;
  ASSERT_TRUE(args.Parse(3, const_cast<char* const*>(argv), 1, spec));
  EXPECT_DOUBLE_EQ(args.GetDouble("gazetteer", 1.0), 0.7);
}

TEST(FlagsTest, RepeatedFlagKeepsLastValue) {
  const FlagSpec spec{{"epochs", FlagKind::kValue}};
  const char* argv[] = {"dlner", "--epochs", "3", "--epochs", "9"};
  Args args;
  ASSERT_TRUE(args.Parse(5, const_cast<char* const*>(argv), 1, spec));
  EXPECT_EQ(args.GetInt("epochs", 0), 9);
}

// GetInt on a malformed stored value exits 1 with the flag named — the
// "garbage becomes 0" bug this subsystem replaces.
TEST(FlagsDeathTest, TypedGetterExitsOnMalformedValue) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const FlagSpec spec{{"epochs", FlagKind::kValue}};
  const char* argv[] = {"dlner", "--epochs", "12x"};
  Args args;
  ASSERT_TRUE(args.Parse(3, const_cast<char* const*>(argv), 1, spec));
  EXPECT_EXIT(args.GetInt("epochs", 0), ::testing::ExitedWithCode(1),
              "--epochs");
}

}  // namespace
}  // namespace dlner::core
