// Property-based invariants over randomized inputs (seed-parameterized):
//  * tag-scheme encode/decode is the identity on valid flat annotations;
//  * lenient decoding never crashes and always yields valid flat spans for
//    arbitrary tag sequences;
//  * Viterbi optimality: no sampled path scores above the decoded one;
//  * semi-CRF segmental Viterbi dominates the gold segmentation score;
//  * CRF posterior marginals are proper distributions and agree with the
//    sum rule under constrained mass;
//  * gazetteer annotation is consistent with membership features.
#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/gazetteer.h"
#include "data/synthetic.h"
#include "decoders/crf.h"
#include "decoders/semicrf.h"
#include "tensor/ops.h"
#include "text/tagging.h"

namespace dlner {
namespace {

using decoders::CrfDecoder;
using decoders::SemiCrfDecoder;
using text::Span;
using text::TagScheme;
using text::TagSet;

std::vector<Span> RandomFlatSpans(int num_tokens,
                                  const std::vector<std::string>& types,
                                  Rng* rng) {
  std::vector<Span> spans;
  int pos = 0;
  while (pos < num_tokens) {
    if (rng->Bernoulli(0.4)) {
      const int len = std::min(num_tokens - pos, rng->UniformInt(1, 3));
      spans.push_back(
          {pos, pos + len,
           types[rng->UniformInt(0, static_cast<int>(types.size()) - 1)]});
      pos += len;
    }
    pos += rng->UniformInt(1, 3);
  }
  return spans;
}

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, SchemeRoundTripOnRandomAnnotations) {
  Rng rng(1000 + GetParam());
  const std::vector<std::string> types = {"A", "B", "C"};
  for (TagScheme scheme :
       {TagScheme::kBio, TagScheme::kBioes}) {  // IO merges adjacent spans
    TagSet tags(types, scheme);
    for (int trial = 0; trial < 20; ++trial) {
      const int n = rng.UniformInt(1, 25);
      std::vector<Span> spans = RandomFlatSpans(n, types, &rng);
      std::vector<Span> back = tags.TagIdsToSpans(tags.SpansToTagIds(spans, n));
      std::sort(spans.begin(), spans.end());
      EXPECT_EQ(back, spans);
    }
  }
}

TEST_P(PropertyTest, LenientDecodingOfArbitraryTagSequences) {
  Rng rng(2000 + GetParam());
  const std::vector<std::string> types = {"X", "Y"};
  for (TagScheme scheme :
       {TagScheme::kIo, TagScheme::kBio, TagScheme::kBioes}) {
    TagSet tags(types, scheme);
    for (int trial = 0; trial < 20; ++trial) {
      const int n = rng.UniformInt(1, 30);
      std::vector<int> ids(n);
      for (int& id : ids) id = rng.UniformInt(0, tags.size() - 1);
      std::vector<Span> spans = tags.TagIdsToSpans(ids);
      EXPECT_TRUE(text::SpansAreValid(spans, n));
      EXPECT_TRUE(text::SpansAreFlat(spans));
    }
  }
}

TEST_P(PropertyTest, ViterbiDominatesSampledPaths) {
  Rng rng(3000 + GetParam());
  TagSet tags({"P", "Q"}, TagScheme::kIo);  // unconstrained scheme
  CrfDecoder dec(3, &tags, &rng, /*constrained_decoding=*/false);
  const int n = rng.UniformInt(2, 8);
  Tensor enc_t({n, 3});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = rng.Uniform(-1, 1);
  Var enc = Constant(std::move(enc_t));
  Var emissions = dec.Emissions(enc);
  std::vector<int> best = dec.ViterbiPath(emissions->value);
  const Float best_score = dec.PathScore(emissions, best)->value[0];
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> path(n);
    for (int& p : path) p = rng.UniformInt(0, tags.size() - 1);
    EXPECT_LE(dec.PathScore(emissions, path)->value[0], best_score + 1e-9);
  }
}

TEST_P(PropertyTest, ViterbiScoreBelowLogPartition) {
  // logZ = log sum exp over paths > max path score.
  Rng rng(3500 + GetParam());
  TagSet tags({"P"}, TagScheme::kBio);
  CrfDecoder dec(2, &tags, &rng, false);
  const int n = rng.UniformInt(2, 10);
  Tensor enc_t({n, 2});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = rng.Uniform(-1, 1);
  Var enc = Constant(std::move(enc_t));
  Var emissions = dec.Emissions(enc);
  std::vector<int> best = dec.ViterbiPath(emissions->value);
  EXPECT_GT(dec.LogPartition(emissions)->value[0],
            dec.PathScore(emissions, best)->value[0]);
}

TEST_P(PropertyTest, SemiCrfViterbiDominatesGold) {
  Rng rng(4000 + GetParam());
  const std::vector<std::string> types = {"E", "F"};
  SemiCrfDecoder dec(3, types, 3, &rng);
  const int n = rng.UniformInt(3, 10);
  Tensor enc_t({n, 3});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = rng.Uniform(-1, 1);
  Var enc = Constant(std::move(enc_t));

  // Random gold segmentation with spans of length <= 3.
  text::Sentence gold;
  for (int t = 0; t < n; ++t) gold.tokens.push_back("w");
  gold.spans = RandomFlatSpans(n, types, &rng);
  for (Span& sp : gold.spans) sp.end = std::min(sp.end, sp.start + 3);

  auto gold_segments = dec.GoldSegmentation(gold);
  const Float gold_score =
      dec.SegmentationScore(enc, gold_segments)->value[0];

  // The decoded segmentation's score: reconstruct via SegmentationScore of
  // the predicted spans (converted back to a full segmentation).
  text::Sentence predicted = gold;
  predicted.spans = dec.Predict(enc);
  const Float best_score =
      dec.SegmentationScore(enc, dec.GoldSegmentation(predicted))->value[0];
  EXPECT_GE(best_score, gold_score - 1e-9);
}

TEST_P(PropertyTest, CrfMarginalsAreDistributions) {
  Rng rng(5000 + GetParam());
  TagSet tags({"A", "B", "C"}, TagScheme::kBioes);
  CrfDecoder dec(4, &tags, &rng);
  const int n = rng.UniformInt(1, 12);
  Tensor enc_t({n, 4});
  for (int i = 0; i < enc_t.size(); ++i) enc_t[i] = rng.Uniform(-2, 2);
  Var enc = Constant(std::move(enc_t));
  Tensor marginals = dec.Marginals(dec.Emissions(enc)->value);
  for (int t = 0; t < n; ++t) {
    Float row = 0.0;
    for (int k = 0; k < tags.size(); ++k) {
      EXPECT_GE(marginals.at(t, k), -1e-12);
      EXPECT_LE(marginals.at(t, k), 1.0 + 1e-9);
      row += marginals.at(t, k);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST_P(PropertyTest, GazetteerAnnotationImpliesMembershipFeatures) {
  Rng rng(6000 + GetParam());
  data::GenOptions opts;
  opts.num_sentences = 30;
  opts.seed = 600 + GetParam();
  text::Corpus corpus = data::GenerateCorpus(data::Genre::kNews, opts);
  data::Gazetteer gaz = data::Gazetteer::FromCorpus(corpus, 0.7, GetParam());
  if (gaz.size() == 0) return;
  for (const auto& s : corpus.sentences) {
    auto spans = gaz.Annotate(s.tokens);
    auto feats = gaz.MatchFeatures(s.tokens);
    // Every annotated token must carry the corresponding type feature.
    for (const Span& sp : spans) {
      int type_idx = -1;
      for (size_t k = 0; k < gaz.types().size(); ++k) {
        if (gaz.types()[k] == sp.type) type_idx = static_cast<int>(k);
      }
      ASSERT_GE(type_idx, 0);
      for (int t = sp.start; t < sp.end; ++t) {
        EXPECT_EQ(feats[t][type_idx], 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace dlner
