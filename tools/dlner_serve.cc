// dlner_serve — long-lived tagging server (docs/SERVING.md).
//
//   dlner_serve --model model.bin
//   dlner_serve --models ner=a.bin,chem=b.bin --port 7400
//
// Speaks newline-delimited JSON over TCP:
//
//   -> {"id":1,"text":"John Smith visited Paris ."}
//   <- {"id":1,"model":"default","cached":false,"tokens":[...],"spans":[...]}
//
// plus admin commands ({"cmd":"reload","model":...,"path":...},
// {"cmd":"models"}, {"cmd":"stats"}, {"cmd":"metrics"},
// {"cmd":"shutdown"}). Concurrent requests are micro-batched through the
// compiled inference plan, so responses are byte-identical to `dlner tag`
// on the same model and input. Live observability (request-scoped stage
// spans, rolling serve.window.* metrics, a Prometheus scrape on
// --metrics-port, SLO gauges, slow-request logging) is described in
// docs/OBSERVABILITY.md.
#include <algorithm>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>

#include "core/flags.h"
#include "serve/server.h"
#include "tools/tool_common.h"

namespace {

using namespace dlner;
using core::Args;
using core::FlagKind;
using core::FlagSpec;

std::atomic<bool> g_interrupted{false};

void OnSignal(int) { g_interrupted.store(true); }

void Usage() {
  std::printf(
      "dlner_serve --model FILE | --models NAME=FILE[,NAME=FILE...]\n"
      "  --host ADDR          bind address (default 127.0.0.1)\n"
      "  --port N             TCP port; 0 = ephemeral, printed on stdout\n"
      "  --queue-max N        admission-queue bound; full -> 429 (default 256)\n"
      "  --batch-max N        micro-batch flush size (default 16)\n"
      "  --batch-delay-us N   micro-batch flush deadline (default 2000)\n"
      "  --cache-cap N        LRU response-cache entries; 0 = off (default 4096)\n"
      "  --max-line-bytes N   request lines above this -> 413 (default 1MiB)\n"
      "  --max-tokens N       requests above this -> 413 (default 512)\n"
      "  --quantized          serve through the int8 planned path; every\n"
      "                       model load requires its FILE.quant sidecar\n"
      "                       (written by `dlner quantize`)\n"
      "  --threads N          worker threads for the inference plan\n"
      "  --metrics-port N     Prometheus text scrape on this port (HTTP;\n"
      "                       0 = ephemeral, printed on stdout; default off)\n"
      "  --trace-sample-rate F  fraction of requests traced as\n"
      "                       serve/request + stage spans (default 1.0)\n"
      "  --slow-request-us N  log serve_slow_request (warn, with stage\n"
      "                       breakdown) for slower requests; 0 = off\n"
      "  --slo-us N           latency objective feeding the rolling\n"
      "                       slo_attainment / error-budget gauges; 0 = off\n"
      "  --slo-target F       attainment target for the error budget\n"
      "                       (default 0.99)\n"
      "  --metrics-window-s N rolling-window length for serve.window.*\n"
      "                       metrics (default 60, in 12 epochs)\n"
      "observability: --log-level LEVEL --trace-out FILE --metrics-out FILE\n"
      "document requests: add \"doc\":true to a tagging request to thread it\n"
      "                   through the connection's entity-consistency memory\n"
      "protocol and backpressure semantics: docs/SERVING.md\n");
}

// "--models ner=a.bin,chem=b.bin" -> registry loads. Returns false on a
// malformed entry or a checkpoint that fails to load.
bool LoadModels(const std::string& arg, serve::ModelRegistry* registry) {
  std::size_t pos = 0;
  while (pos < arg.size()) {
    std::size_t comma = arg.find(',', pos);
    if (comma == std::string::npos) comma = arg.size();
    const std::string entry = arg.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= entry.size()) {
      std::fprintf(stderr,
                   "dlner_serve: --models: expected NAME=FILE, got \"%s\"\n",
                   entry.c_str());
      return false;
    }
    const std::string name = entry.substr(0, eq);
    const std::string path = entry.substr(eq + 1);
    if (!registry->Load(name, path)) {
      std::fprintf(stderr, "dlner_serve: cannot load model %s from %s\n",
                   name.c_str(), path.c_str());
      return false;
    }
    std::printf("loaded model %s from %s\n", name.c_str(), path.c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSpec spec{{"model", FlagKind::kValue},
                {"models", FlagKind::kValue},
                {"host", FlagKind::kValue},
                {"port", FlagKind::kValue},
                {"queue-max", FlagKind::kValue},
                {"batch-max", FlagKind::kValue},
                {"batch-delay-us", FlagKind::kValue},
                {"cache-cap", FlagKind::kValue},
                {"max-line-bytes", FlagKind::kValue},
                {"max-tokens", FlagKind::kValue},
                {"quantized", FlagKind::kBool},
                {"threads", FlagKind::kValue},
                {"metrics-port", FlagKind::kValue},
                {"trace-sample-rate", FlagKind::kValue},
                {"slow-request-us", FlagKind::kValue},
                {"slo-us", FlagKind::kValue},
                {"slo-target", FlagKind::kValue},
                {"metrics-window-s", FlagKind::kValue},
                {"help", FlagKind::kBool}};
  tools::AddObsFlags(&spec);
  Args args;
  if (!args.Parse(argc, argv, 1, spec)) {
    std::fprintf(stderr, "dlner_serve: %s\n", args.error().c_str());
    Usage();
    return 1;
  }
  if (args.Has("help")) {
    Usage();
    return 0;
  }
  if (!args.Has("model") && !args.Has("models")) {
    std::fprintf(stderr, "dlner_serve: --model or --models is required\n");
    Usage();
    return 1;
  }
  tools::ApplyObsFlags(args);
  tools::ApplyThreadsFlag(args);

  serve::ModelRegistry registry;
  // Applies to every load, including hot reloads over the wire: a
  // quantized server stays quantized for its whole lifetime.
  registry.set_quantized(args.Has("quantized"));
  if (args.Has("model") && !registry.Load("default", args.Get("model"))) {
    std::fprintf(stderr, "dlner_serve: cannot load model %s\n",
                 args.Get("model").c_str());
    return 1;
  }
  if (args.Has("models") && !LoadModels(args.Get("models"), &registry)) {
    return 1;
  }

  serve::ServeConfig config;
  config.host = args.Get("host", "127.0.0.1");
  config.port = args.GetInt("port", 0);
  config.queue_capacity = args.GetInt("queue-max", 256);
  config.batch_max = args.GetInt("batch-max", 16);
  config.batch_delay_us = args.GetInt("batch-delay-us", 2000);
  config.cache_capacity = static_cast<std::size_t>(
      args.GetUInt64("cache-cap", 4096));
  config.max_line_bytes = static_cast<std::size_t>(
      args.GetUInt64("max-line-bytes", 1 << 20));
  config.max_tokens = args.GetInt("max-tokens", 512);
  config.metrics_port = args.GetInt("metrics-port", -1);
  config.trace_sample_rate = args.GetDouble("trace-sample-rate", 1.0);
  config.slow_request_us = args.GetInt("slow-request-us", 0);
  config.slo_us = args.GetInt("slo-us", 0);
  config.slo_target = args.GetDouble("slo-target", 0.99);
  const int window_s = args.GetInt("metrics-window-s", 60);
  config.window_epochs = 12;
  config.window_epoch_us =
      std::max<std::int64_t>(1, window_s * 1'000'000ll / config.window_epochs);

  serve::Server server(&registry, config);
  if (!server.Start()) {
    std::fprintf(stderr, "dlner_serve: cannot bind %s:%d\n",
                 config.host.c_str(), config.port);
    return 1;
  }
  // The bound port on its own line so scripts (and bench_serve) can grab
  // an ephemeral port from stdout.
  std::printf("listening on %s:%d\n", config.host.c_str(), server.port());
  if (server.metrics_port() > 0) {
    std::printf("metrics on %s:%d\n", config.host.c_str(),
                server.metrics_port());
  }
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  server.Wait(&g_interrupted);
  server.Stop();
  std::printf("served %lld responses (%lld rejected, %lld cache hits)\n",
              static_cast<long long>(server.responses_total()),
              static_cast<long long>(server.rejected_total()),
              static_cast<long long>(server.cache_hits()));

  server.PublishMetrics();
  return tools::FlushObsArtifacts(args) ? 0 : 1;
}
