// Flag plumbing shared by the dlner and dlner_serve front ends: the
// observability flags every subcommand accepts, the --threads runtime
// knob, and the end-of-run artifact flush.
#ifndef DLNER_TOOLS_TOOL_COMMON_H_
#define DLNER_TOOLS_TOOL_COMMON_H_

#include <cstdio>
#include <string>

#include "core/flags.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "runtime/runtime.h"

namespace dlner::tools {

/// Adds the observability flags (--log-level, --trace-out, --metrics-out)
/// to a subcommand's spec.
inline void AddObsFlags(core::FlagSpec* spec) {
  (*spec)["log-level"] = core::FlagKind::kValue;
  (*spec)["trace-out"] = core::FlagKind::kValue;
  (*spec)["metrics-out"] = core::FlagKind::kValue;
}

/// Applies --log-level / --trace-out / --metrics-out to the process-wide
/// observability state. Collection starts before the command runs;
/// artifacts are written by FlushObsArtifacts afterwards.
inline void ApplyObsFlags(const core::Args& args) {
  if (args.Has("log-level")) {
    obs::SetLogLevel(obs::LogLevelFromString(args.Get("log-level")));
  }
  if (args.Has("trace-out")) obs::EnableTracing(true);
  if (args.Has("metrics-out")) obs::EnableMetrics(true);
}

/// Applies --threads to the process-wide runtime (0 = hardware
/// concurrency). Without the flag the runtime keeps its DLNER_THREADS /
/// hardware default.
inline void ApplyThreadsFlag(const core::Args& args) {
  if (args.Has("threads")) {
    runtime::Runtime::Get().SetThreads(args.GetInt("threads", 0));
  }
}

/// Writes the trace / metrics files requested on the command line. Returns
/// false (and logs) when a file cannot be written, so the process exits
/// non-zero instead of silently dropping the artifact.
inline bool FlushObsArtifacts(const core::Args& args) {
  bool ok = true;
  if (args.Has("metrics-out")) {
    // Fold the thread-pool counters and the tracer's recorded/dropped span
    // counts into the registry before the snapshot (a nonzero
    // trace.dropped_spans means ring wraparound ate spans; check_trace.py
    // warns on it).
    runtime::Runtime::Get().PublishMetrics();
    obs::PublishTraceMetrics();
    const std::string path = args.Get("metrics-out");
    if (!obs::Metrics::Get().WriteJson(path)) {
      obs::ForceLog(obs::LogLevel::kError, "metrics_write_failed",
                    {{"path", path}});
      ok = false;
    }
  }
  if (args.Has("trace-out")) {
    const std::string path = args.Get("trace-out");
    if (!obs::Tracer::Get().WriteChromeTrace(path)) {
      obs::ForceLog(obs::LogLevel::kError, "trace_write_failed",
                    {{"path", path}});
      ok = false;
    }
  }
  return ok;
}

}  // namespace dlner::tools

#endif  // DLNER_TOOLS_TOOL_COMMON_H_
