// dlner — command-line front end of the toolkit (the survey Section 5.2
// vision: "an easy-to-use NER toolkit ... with some standardized modules:
// data-processing, input representation, context encoder, tag decoder, and
// effectiveness measure").
//
// Subcommands:
//   dlner generate --dataset conll-like --n 400 --seed 1 --out train.conll
//   dlner train    --train train.conll --model model.bin
//                  [--dev dev.conll] [--encoder bilstm] [--decoder crf]
//                  [--scheme bioes] [--char-cnn] [--char-rnn] [--shape]
//                  [--gazetteer [coverage]] [--char-lm] [--token-lm]
//                  [--epochs 12] [--lr 0.015] [--word-dropout 0.2]
//   dlner tag      --model model.bin --text "John Smith visited Paris ."
//   dlner tag      --model model.bin --in raw.conll --out tagged.conll
//   dlner eval     --model model.bin --test test.conll [--relaxed]
//   dlner quantize --model model.bin --calib dev.conll [--out model.bin.quant]
//                  [--verify test.conll]
//
// Flag parsing is strict (core/flags.h): each subcommand declares the
// flags it accepts, unknown flags and malformed numeric values exit 1
// instead of silently becoming defaults, and seeds are full uint64.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "core/flags.h"
#include "core/pipeline.h"
#include "data/dataset.h"
#include "embeddings/lm.h"
#include "stream/stream_tagger.h"
#include "tensor/quant.h"
#include "text/conll.h"
#include "tools/tool_common.h"

namespace {

using namespace dlner;
using core::Args;
using core::FlagKind;
using core::FlagSpec;

std::vector<std::string> EntityTypesOf(const text::Corpus& corpus) {
  std::set<std::string> types;
  for (const auto& s : corpus.sentences) {
    for (const auto& sp : s.spans) types.insert(sp.type);
  }
  return {types.begin(), types.end()};
}

FlagSpec GenerateSpec() {
  FlagSpec spec{{"dataset", FlagKind::kValue}, {"n", FlagKind::kValue},
                {"seed", FlagKind::kValue},    {"out", FlagKind::kValue},
                {"scheme", FlagKind::kValue}};
  tools::AddObsFlags(&spec);
  return spec;
}

FlagSpec TrainSpec() {
  FlagSpec spec{{"train", FlagKind::kValue},
                {"model", FlagKind::kValue},
                {"dev", FlagKind::kValue},
                {"encoder", FlagKind::kValue},
                {"decoder", FlagKind::kValue},
                {"scheme", FlagKind::kValue},
                {"char-cnn", FlagKind::kBool},
                {"char-rnn", FlagKind::kBool},
                {"shape", FlagKind::kBool},
                {"gazetteer", FlagKind::kOptionalValue},
                {"char-lm", FlagKind::kBool},
                {"token-lm", FlagKind::kBool},
                {"word-dim", FlagKind::kValue},
                {"hidden-dim", FlagKind::kValue},
                {"word-dropout", FlagKind::kValue},
                {"epochs", FlagKind::kValue},
                {"lr", FlagKind::kValue},
                {"patience", FlagKind::kValue},
                {"seed", FlagKind::kValue},
                {"threads", FlagKind::kValue},
                {"verbose", FlagKind::kBool}};
  tools::AddObsFlags(&spec);
  return spec;
}

FlagSpec TagSpec() {
  FlagSpec spec{{"model", FlagKind::kValue},
                {"text", FlagKind::kValue},
                {"in", FlagKind::kValue},
                {"out", FlagKind::kValue},
                {"stream", FlagKind::kBool},
                {"doc-context", FlagKind::kBool},
                {"chunk-bytes", FlagKind::kValue},
                {"flush-sentences", FlagKind::kValue},
                {"quantized", FlagKind::kBool},
                {"threads", FlagKind::kValue}};
  tools::AddObsFlags(&spec);
  return spec;
}

FlagSpec EvalSpec() {
  FlagSpec spec{{"model", FlagKind::kValue},
                {"test", FlagKind::kValue},
                {"relaxed", FlagKind::kBool},
                {"quantized", FlagKind::kBool},
                {"threads", FlagKind::kValue}};
  tools::AddObsFlags(&spec);
  return spec;
}

FlagSpec QuantizeSpec() {
  FlagSpec spec{{"model", FlagKind::kValue},
                {"calib", FlagKind::kValue},
                {"out", FlagKind::kValue},
                {"verify", FlagKind::kValue},
                {"threads", FlagKind::kValue}};
  tools::AddObsFlags(&spec);
  return spec;
}

// Loads the `<model>.quant` sidecar (or an explicit path) and switches the
// pipeline's model to the int8 planned path. Fails loudly: serving a model
// quantized with a missing or corrupt calibration would silently fall back
// to f32 and invalidate any latency numbers derived from the run.
bool EnableQuantized(core::Pipeline* pipeline, const std::string& model_path,
                     const char* cmd) {
  const std::string sidecar = model_path + ".quant";
  quant::Calibration calib;
  if (!quant::ReadCalibrationFile(sidecar, &calib)) {
    std::fprintf(stderr,
                 "%s: --quantized: cannot read calibration sidecar %s "
                 "(run `dlner quantize` first)\n",
                 cmd, sidecar.c_str());
    return false;
  }
  pipeline->model()->SetQuantCalibration(std::move(calib));
  pipeline->model()->set_quantized_inference(true);
  return true;
}

int CmdGenerate(const Args& args) {
  const std::string name = args.Get("dataset", "conll-like");
  const int n = args.GetInt("n", 400);
  const uint64_t seed = args.GetUInt64("seed", 1);
  const std::string out = args.Get("out");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 1;
  }
  text::Corpus corpus = data::MakeDataset(name, n, seed);
  // Nested corpora cannot be written as flat tag sequences; keep the
  // outermost layer for CoNLL output.
  for (auto& s : corpus.sentences) {
    if (!text::SpansAreFlat(s.spans)) {
      std::sort(s.spans.begin(), s.spans.end(),
                [](const text::Span& a, const text::Span& b) {
                  return (a.end - a.start) > (b.end - b.start);
                });
      std::vector<text::Span> flat;
      for (const text::Span& sp : s.spans) {
        bool overlaps = false;
        for (const text::Span& kept : flat) {
          if (sp.start < kept.end && kept.start < sp.end) overlaps = true;
        }
        if (!overlaps) flat.push_back(sp);
      }
      std::sort(flat.begin(), flat.end());
      s.spans = std::move(flat);
    }
  }
  text::TagSet tags(EntityTypesOf(corpus),
                    text::TagSchemeFromString(args.Get("scheme", "bioes")));
  if (!text::WriteConllFile(out, corpus, tags)) {
    std::fprintf(stderr, "generate: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %d sentences to %s\n", corpus.size(), out.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  const std::string train_path = args.Get("train");
  const std::string model_path = args.Get("model");
  if (train_path.empty() || model_path.empty()) {
    std::fprintf(stderr, "train: --train and --model are required\n");
    return 1;
  }
  text::Corpus train;
  if (!text::ReadConllFile(train_path, &train)) {
    std::fprintf(stderr, "train: cannot read %s\n", train_path.c_str());
    return 1;
  }
  text::Corpus dev;
  const bool has_dev =
      args.Has("dev") && text::ReadConllFile(args.Get("dev"), &dev);

  core::NerConfig config;
  config.encoder = args.Get("encoder", "bilstm");
  config.decoder = args.Get("decoder", "crf");
  config.scheme = args.Get("scheme", "bioes");
  config.use_char_cnn = args.Has("char-cnn");
  config.use_char_rnn = args.Has("char-rnn");
  config.use_shape = args.Has("shape");
  config.use_gazetteer = args.Has("gazetteer");
  config.use_char_lm = args.Has("char-lm");
  config.use_token_lm = args.Has("token-lm");
  config.word_dim = args.GetInt("word-dim", 24);
  config.hidden_dim = args.GetInt("hidden-dim", 24);
  config.word_unk_dropout = args.GetDouble("word-dropout", 0.2);
  config.seed = args.GetUInt64("seed", 42);
  config.threads = args.GetInt("threads", -1);
  // Mirror the process-wide obs flags into the config so models built from
  // this config behave the same when constructed elsewhere. Runtime-only:
  // none of these is serialized into the checkpoint.
  if (args.Has("log-level")) {
    config.log_level =
        static_cast<int>(obs::LogLevelFromString(args.Get("log-level")));
  }
  if (args.Has("trace-out")) config.collect_traces = 1;
  if (args.Has("metrics-out")) config.collect_metrics = 1;

  core::TrainConfig tc;
  tc.epochs = args.GetInt("epochs", 12);
  tc.lr = args.GetDouble("lr", 0.015);
  tc.patience = has_dev ? args.GetInt("patience", 4) : 0;
  tc.verbose = args.Has("verbose");

  // External resources built from the training data. They end up inside
  // the checkpoint, so the saved model stays self-contained.
  core::Resources res;
  data::Gazetteer gaz;
  std::unique_ptr<embeddings::CharLm> char_lm;
  std::unique_ptr<embeddings::TokenLm> token_lm;
  std::vector<std::vector<std::string>> lm_sentences;
  if (config.use_char_lm || config.use_token_lm) {
    for (const auto& s : train.sentences) {
      if (!s.tokens.empty()) lm_sentences.push_back(s.tokens);
    }
  }
  if (config.use_gazetteer) {
    // "--gazetteer 0.7" keeps each distinct mention with probability 0.7;
    // the bare flag (stored as the sentinel "true") keeps them all.
    const std::string cov = args.Get("gazetteer", "true");
    double coverage = 1.0;
    if (cov != "true" && !core::ParseDouble(cov, &coverage)) {
      std::fprintf(stderr, "train: --gazetteer: invalid coverage \"%s\"\n",
                   cov.c_str());
      return 1;
    }
    gaz = data::Gazetteer::FromCorpus(train, coverage, config.seed);
    res.gazetteer = &gaz;
    std::printf("gazetteer: %d entries, %zu types\n", gaz.size(),
                gaz.types().size());
  }
  if (config.use_char_lm) {
    embeddings::CharLm::Config lc;
    lc.seed = config.seed;
    char_lm = std::make_unique<embeddings::CharLm>(lc);
    std::printf("pre-training char-LM... nll=%.3f\n",
                char_lm->Train(lm_sentences));
    res.char_lm = char_lm.get();
  }
  if (config.use_token_lm) {
    embeddings::TokenLm::Config lc;
    lc.seed = config.seed;
    token_lm = std::make_unique<embeddings::TokenLm>(lc);
    std::printf("pre-training token-LM... nll=%.3f\n",
                token_lm->Train(lm_sentences));
    res.token_lm = token_lm.get();
  }

  std::printf("training %s on %d sentences...\n",
              config.Describe().c_str(), train.size());
  auto pipeline = core::Pipeline::Train(config, tc, train,
                                        has_dev ? &dev : nullptr,
                                        EntityTypesOf(train), res);
  if (has_dev) {
    std::printf("best dev F1 = %.3f\n", pipeline->train_result().best_dev_f1);
  }
  if (!pipeline->Save(model_path)) {
    std::fprintf(stderr, "train: cannot save %s\n", model_path.c_str());
    return 1;
  }
  std::printf("model saved to %s\n", model_path.c_str());
  return 0;
}

// `dlner tag --stream`: --in is RAW TEXT (one or more documents), not
// CoNLL. Bytes are pushed through the streaming tagger in --chunk-bytes
// chunks — the emitted spans are identical for any chunk size — and the
// tagged sentences are written in CoNLL form to --out (stdout by default).
// --doc-context turns on the entity-consistency memory for the document.
int RunTagStream(const Args& args, core::Pipeline* pipeline) {
  std::ifstream is(args.Get("in"), std::ios::binary);
  if (!args.Has("in") || !is) {
    std::fprintf(stderr, "tag --stream: need a readable raw-text --in file\n");
    return 1;
  }
  stream::StreamOptions opts;
  opts.flush_sentences = args.GetInt("flush-sentences", 16);
  if (args.Has("doc-context")) opts.doc_context = 1;
  stream::StreamTagger tagger(pipeline, opts);
  // One CLI invocation streams one document; context 1 groups its
  // stream/feed|flush spans (and the plan/batch spans under them) in a
  // merged trace the same way serve batch ids group server traffic.
  tagger.set_trace_context(1);
  const int chunk_bytes = std::max(args.GetInt("chunk-bytes", 4096), 1);

  text::Corpus tagged;
  auto absorb = [&tagged](std::vector<stream::TaggedSentence> emitted) {
    for (stream::TaggedSentence& ts : emitted) {
      text::Sentence s;
      s.tokens = std::move(ts.tokens);
      s.spans = std::move(ts.spans);
      tagged.sentences.push_back(std::move(s));
    }
  };
  std::vector<char> buf(static_cast<std::size_t>(chunk_bytes));
  while (is.read(buf.data(), chunk_bytes), is.gcount() > 0) {
    absorb(tagger.Feed(
        std::string_view(buf.data(), static_cast<std::size_t>(is.gcount()))));
  }
  absorb(tagger.Flush());

  text::TagSet tags(pipeline->model()->entity_types(),
                    text::TagSchemeFromString(
                        pipeline->model()->config().scheme));
  if (args.Has("out")) {
    if (!text::WriteConllFile(args.Get("out"), tagged, tags)) {
      std::fprintf(stderr, "tag: cannot write %s\n", args.Get("out").c_str());
      return 1;
    }
    std::fprintf(stderr, "tagged %d sentences (doc-context %s) -> %s\n",
                 tagged.size(), tagger.doc_context() ? "on" : "off",
                 args.Get("out").c_str());
  } else {
    text::WriteConll(std::cout, tagged, tags);
  }
  return 0;
}

int CmdTag(const Args& args) {
  tools::ApplyThreadsFlag(args);
  auto pipeline = core::Pipeline::Load(args.Get("model"));
  if (pipeline == nullptr) {
    std::fprintf(stderr, "tag: cannot load model %s\n",
                 args.Get("model").c_str());
    return 1;
  }
  if (args.Has("quantized") &&
      !EnableQuantized(pipeline.get(), args.Get("model"), "tag")) {
    return 1;
  }
  if (args.Has("stream")) return RunTagStream(args, pipeline.get());
  if (args.Has("text")) {
    text::Sentence tagged = pipeline->TagText(args.Get("text"));
    for (int t = 0; t < tagged.size(); ++t) std::printf("%s ",
                                                        tagged.tokens[t].c_str());
    std::printf("\n");
    for (const text::Span& sp : tagged.spans) {
      std::printf("  [%d,%d) %-10s", sp.start, sp.end, sp.type.c_str());
      for (int t = sp.start; t < sp.end; ++t) {
        std::printf(" %s", tagged.tokens[t].c_str());
      }
      std::printf("\n");
    }
    return 0;
  }
  text::Corpus input;
  if (!args.Has("in") || !text::ReadConllFile(args.Get("in"), &input)) {
    std::fprintf(stderr, "tag: need --text or a readable --in file\n");
    return 1;
  }
  std::vector<std::vector<text::Span>> predicted = pipeline->TagCorpus(input);
  for (int i = 0; i < input.size(); ++i) {
    input.sentences[i].spans = std::move(predicted[i]);
  }
  text::TagSet tags(pipeline->model()->entity_types(),
                    text::TagSchemeFromString(
                        pipeline->model()->config().scheme));
  const std::string out = args.Get("out", args.Get("in") + ".tagged");
  if (!text::WriteConllFile(out, input, tags)) {
    std::fprintf(stderr, "tag: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("tagged %d sentences -> %s\n", input.size(), out.c_str());
  return 0;
}

int CmdEval(const Args& args) {
  tools::ApplyThreadsFlag(args);
  auto pipeline = core::Pipeline::Load(args.Get("model"));
  if (pipeline == nullptr) {
    std::fprintf(stderr, "eval: cannot load model %s\n",
                 args.Get("model").c_str());
    return 1;
  }
  if (args.Has("quantized") &&
      !EnableQuantized(pipeline.get(), args.Get("model"), "eval")) {
    return 1;
  }
  text::Corpus test;
  if (!text::ReadConllFile(args.Get("test"), &test)) {
    std::fprintf(stderr, "eval: cannot read %s\n", args.Get("test").c_str());
    return 1;
  }
  eval::ExactResult result = pipeline->Evaluate(test);
  std::printf("exact match: P=%.3f R=%.3f micro-F1=%.3f macro-F1=%.3f\n",
              result.micro.precision(), result.micro.recall(),
              result.micro.f1(), result.macro_f1);
  for (const auto& [type, prf] : result.per_type) {
    std::printf("  %-14s P=%.3f R=%.3f F1=%.3f (tp=%d fp=%d fn=%d)\n",
                type.c_str(), prf.precision(), prf.recall(), prf.f1(),
                prf.tp, prf.fp, prf.fn);
  }
  if (args.Has("relaxed")) {
    eval::RelaxedMatchEvaluator relaxed;
    std::vector<std::vector<text::Span>> predicted =
        pipeline->TagCorpus(test);
    for (int i = 0; i < test.size(); ++i) {
      relaxed.Add(test.sentences[i].spans, predicted[i]);
    }
    eval::RelaxedResult r = relaxed.Result();
    std::printf("relaxed (MUC): type-F1=%.3f text-F1=%.3f muc-F1=%.3f\n",
                r.type.f1(), r.text.f1(), r.muc_f1);
  }
  return 0;
}

int CmdQuantize(const Args& args) {
  tools::ApplyThreadsFlag(args);
  const std::string model_path = args.Get("model");
  const std::string calib_path = args.Get("calib");
  if (model_path.empty() || calib_path.empty()) {
    std::fprintf(stderr, "quantize: --model and --calib are required\n");
    return 1;
  }
  auto pipeline = core::Pipeline::Load(model_path);
  if (pipeline == nullptr) {
    std::fprintf(stderr, "quantize: cannot load model %s\n",
                 model_path.c_str());
    return 1;
  }
  text::Corpus calib_corpus;
  if (!text::ReadConllFile(calib_path, &calib_corpus)) {
    std::fprintf(stderr, "quantize: cannot read %s\n", calib_path.c_str());
    return 1;
  }
  core::NerModel* model = pipeline->model();
  const int ops = model->CalibrateQuantization(calib_corpus);
  if (ops == 0) {
    std::fprintf(stderr,
                 "quantize: architecture %s has no quantizable ops "
                 "(plan: %s)\n",
                 model->config().Describe().c_str(),
                 model->plan().Describe().c_str());
    return 1;
  }
  const std::string out = args.Get("out", model_path + ".quant");
  if (!quant::WriteCalibrationFile(out, model->quant_calibration())) {
    std::fprintf(stderr, "quantize: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("calibrated %d quantizable ops over %d sentences -> %s\n", ops,
              calib_corpus.size(), out.c_str());
  if (args.Has("verify")) {
    text::Corpus verify_corpus;
    if (!text::ReadConllFile(args.Get("verify"), &verify_corpus)) {
      std::fprintf(stderr, "quantize: cannot read %s\n",
                   args.Get("verify").c_str());
      return 1;
    }
    const double f32_f1 = pipeline->Evaluate(verify_corpus).micro.f1();
    model->set_quantized_inference(true);
    const double int8_f1 = pipeline->Evaluate(verify_corpus).micro.f1();
    model->set_quantized_inference(false);
    std::printf("verify: f32 micro-F1=%.4f int8 micro-F1=%.4f delta=%+.4f\n",
                f32_f1, int8_f1, int8_f1 - f32_f1);
  }
  return 0;
}

void Usage() {
  std::printf(
      "dlner <generate|train|tag|eval|quantize> [flags]\n"
      "  generate --dataset NAME --n N --seed S --out FILE [--scheme bioes]\n"
      "  train    --train FILE --model FILE [--dev FILE] [--encoder E]\n"
      "           [--decoder D] [--char-cnn] [--char-rnn] [--shape]\n"
      "           [--gazetteer [COVERAGE]] [--char-lm] [--token-lm]\n"
      "           [--epochs N] [--lr X] [--word-dropout X] [--verbose]\n"
      "           [--threads N]\n"
      "  tag      --model FILE (--text \"...\" | --in FILE [--out FILE])\n"
      "           [--quantized] [--threads N]\n"
      "           [--stream [--doc-context] [--chunk-bytes N]\n"
      "            [--flush-sentences N]]  (--in is raw text; see\n"
      "            docs/STREAMING.md)\n"
      "  eval     --model FILE --test FILE [--relaxed] [--quantized]\n"
      "           [--threads N]\n"
      "  quantize --model FILE --calib FILE [--out FILE.quant]\n"
      "           [--verify FILE] [--threads N]\n"
      "--quantized: corpus tagging/eval through the int8 planned path;\n"
      "             reads the MODEL.quant sidecar written by quantize\n"
      "--threads N: worker threads for corpus evaluation/tagging\n"
      "             (0 = hardware concurrency; DLNER_THREADS also honored)\n"
      "observability (any subcommand; see docs/OBSERVABILITY.md):\n"
      "  --trace-out FILE    record spans, write Chrome trace_event JSON\n"
      "  --metrics-out FILE  collect metrics, write JSON snapshot\n"
      "  --log-level LEVEL   debug|info|warn|error|off (default warn;\n"
      "                      DLNER_LOG_LEVEL also honored)\n"
      "datasets: conll-like ontonotes-like wnut-like fine-grained-like\n"
      "          nested-like bio-like\n"
      "encoders: mlp cnn idcnn bilstm bigru transformer brnn\n"
      "decoders: softmax crf semicrf rnn pointer fofe\n"
      "serving: see dlner_serve (docs/SERVING.md)\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string cmd = argv[1];
  FlagSpec spec;
  if (cmd == "generate") spec = GenerateSpec();
  else if (cmd == "train") spec = TrainSpec();
  else if (cmd == "tag") spec = TagSpec();
  else if (cmd == "eval") spec = EvalSpec();
  else if (cmd == "quantize") spec = QuantizeSpec();
  else {
    Usage();
    return 1;
  }
  Args args;
  if (!args.Parse(argc, argv, 2, spec)) {
    std::fprintf(stderr, "dlner %s: %s\n", cmd.c_str(), args.error().c_str());
    return 1;
  }
  tools::ApplyObsFlags(args);
  int rc = -1;
  if (cmd == "generate") rc = CmdGenerate(args);
  if (cmd == "train") rc = CmdTrain(args);
  if (cmd == "tag") rc = CmdTag(args);
  if (cmd == "eval") rc = CmdEval(args);
  if (cmd == "quantize") rc = CmdQuantize(args);
  if (rc < 0) {
    Usage();
    return 1;
  }
  if (!tools::FlushObsArtifacts(args)) rc = rc == 0 ? 1 : rc;
  return rc;
}
