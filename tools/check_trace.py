#!/usr/bin/env python3
"""Validates the observability artifacts produced by `dlner --trace-out /
--metrics-out` (and by bench_throughput). Standard library only; used by the
CI observability job and handy for checking a local capture:

    python3 tools/check_trace.py --trace trace.json \
        --require-span embed --require-span encode \
        --metrics metrics.json --min-series 10

Exits 0 when every requested check passes, 1 otherwise (each failure is
printed).
"""
import argparse
import json
import sys

METRIC_TYPES = {"counter", "gauge", "histogram", "series"}


def fail(errors, message):
    errors.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check_trace(path, require_spans, errors):
    try:
        with open(path, encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"{path}: cannot parse: {e}")
        return
    events = root.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, f"{path}: traceEvents missing or empty")
        return
    names = set()
    complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(errors, f"{path}: traceEvents[{i}] is not an object")
            continue
        for key, kind in (("name", str), ("ph", str), ("pid", int),
                          ("tid", int)):
            if not isinstance(ev.get(key), kind):
                fail(errors,
                     f"{path}: traceEvents[{i}] missing {kind.__name__} "
                     f"field '{key}'")
        if ev.get("ph") == "X":
            complete += 1
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    fail(errors,
                         f"{path}: traceEvents[{i}] 'X' event missing "
                         f"numeric '{key}'")
            if isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
                fail(errors, f"{path}: traceEvents[{i}] has negative dur")
            names.add(ev.get("name"))
    if complete == 0:
        fail(errors, f"{path}: no 'X' (complete) span events")
    for span in require_spans:
        if span not in names:
            fail(errors, f"{path}: required span '{span}' not found "
                         f"(have: {sorted(n for n in names if n)[:20]})")
    print(f"{path}: {len(events)} events, {complete} spans, "
          f"{len(names)} distinct span names")


def check_metrics(path, min_series, require_metrics, errors):
    try:
        with open(path, encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"{path}: cannot parse: {e}")
        return
    if root.get("schema") != "dlner-metrics-v1":
        fail(errors, f"{path}: schema is {root.get('schema')!r}, "
                     f"expected 'dlner-metrics-v1'")
    series = root.get("series")
    if not isinstance(series, dict):
        fail(errors, f"{path}: 'series' missing or not an object")
        return
    for name, body in series.items():
        if not isinstance(body, dict):
            fail(errors, f"{path}: series '{name}' is not an object")
            continue
        kind = body.get("type")
        if kind not in METRIC_TYPES:
            fail(errors, f"{path}: series '{name}' has invalid type {kind!r}")
        elif kind == "series":
            if not isinstance(body.get("points"), list):
                fail(errors, f"{path}: series '{name}' missing points list")
        elif kind == "histogram":
            for key in ("count", "sum", "min", "max", "p50", "p90", "p99"):
                if not isinstance(body.get(key), (int, float)):
                    fail(errors,
                         f"{path}: histogram '{name}' missing '{key}'")
        elif not isinstance(body.get("value"), (int, float)):
            fail(errors, f"{path}: {kind} '{name}' missing numeric 'value'")
    if len(series) < min_series:
        fail(errors, f"{path}: {len(series)} series < required {min_series}")
    for name in require_metrics:
        if name not in series:
            have = sorted(series)[:20]
            fail(errors, f"{path}: required metric '{name}' not found "
                         f"(have: {have})")
    print(f"{path}: {len(series)} series")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="span name that must appear (repeatable)")
    parser.add_argument("--metrics", help="dlner-metrics-v1 JSON to validate")
    parser.add_argument("--min-series", type=int, default=1,
                        help="minimum number of metric series (default 1)")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME",
                        help="metric name that must appear (repeatable)")
    args = parser.parse_args()
    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")

    errors = []
    if args.trace:
        check_trace(args.trace, args.require_span, errors)
    if args.metrics:
        check_metrics(args.metrics, args.min_series, args.require_metric,
                      errors)
    if errors:
        print(f"{len(errors)} check(s) failed", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
