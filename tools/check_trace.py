#!/usr/bin/env python3
"""Validates the observability artifacts produced by `dlner --trace-out /
--metrics-out` (and by bench_throughput / dlner_serve). Standard library
only; used by the CI observability job and handy for checking a local
capture:

    python3 tools/check_trace.py --trace trace.json \
        --require-span embed --require-span encode \
        --require-span-arg serve/request:req \
        --metrics metrics.json --min-series 10 \
        --require-metric serve.window.latency_us:p99

--require-metric accepts either NAME (the metric must exist) or NAME:KEY
(the metric must exist and carry a nonzero numeric KEY, e.g. a windowed
histogram's p99). --require-span-arg NAME:KEY asserts at least one complete
span named NAME carries an args object with key KEY (request-id-bearing
serve spans). A nonzero trace.dropped_spans counter in the metrics file is
reported as a warning (ring wraparound ate spans), not a failure.

Exits 0 when every requested check passes, 1 otherwise (each failure is
printed).
"""
import argparse
import json
import sys

METRIC_TYPES = {"counter", "gauge", "histogram", "series",
                "windowed_counter", "windowed_histogram"}


def fail(errors, message):
    errors.append(message)
    print(f"FAIL: {message}", file=sys.stderr)


def check_trace(path, require_spans, require_span_args, errors):
    try:
        with open(path, encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"{path}: cannot parse: {e}")
        return
    events = root.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(errors, f"{path}: traceEvents missing or empty")
        return
    names = set()
    span_args = {}  # span name -> union of args keys over its X events
    complete = 0
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(errors, f"{path}: traceEvents[{i}] is not an object")
            continue
        for key, kind in (("name", str), ("ph", str), ("pid", int),
                          ("tid", int)):
            if not isinstance(ev.get(key), kind):
                fail(errors,
                     f"{path}: traceEvents[{i}] missing {kind.__name__} "
                     f"field '{key}'")
        if ev.get("ph") == "X":
            complete += 1
            for key in ("ts", "dur"):
                if not isinstance(ev.get(key), (int, float)):
                    fail(errors,
                         f"{path}: traceEvents[{i}] 'X' event missing "
                         f"numeric '{key}'")
            if isinstance(ev.get("dur"), (int, float)) and ev["dur"] < 0:
                fail(errors, f"{path}: traceEvents[{i}] has negative dur")
            names.add(ev.get("name"))
            args = ev.get("args")
            if args is not None and not isinstance(args, dict):
                fail(errors,
                     f"{path}: traceEvents[{i}] args is not an object")
            elif isinstance(args, dict):
                span_args.setdefault(ev.get("name"), set()).update(args)
    if complete == 0:
        fail(errors, f"{path}: no 'X' (complete) span events")
    for span in require_spans:
        if span not in names:
            fail(errors, f"{path}: required span '{span}' not found "
                         f"(have: {sorted(n for n in names if n)[:20]})")
    for spec in require_span_args:
        name, _, key = spec.rpartition(":")
        if not name:
            fail(errors, f"--require-span-arg '{spec}': expected NAME:KEY")
            continue
        if name not in names:
            fail(errors, f"{path}: required span '{name}' not found")
        elif key not in span_args.get(name, set()):
            fail(errors, f"{path}: no '{name}' span carries args key "
                         f"'{key}' (have: {sorted(span_args.get(name, []))})")
    print(f"{path}: {len(events)} events, {complete} spans, "
          f"{len(names)} distinct span names")


def check_metrics(path, min_series, require_metrics, errors):
    try:
        with open(path, encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(errors, f"{path}: cannot parse: {e}")
        return
    if root.get("schema") != "dlner-metrics-v1":
        fail(errors, f"{path}: schema is {root.get('schema')!r}, "
                     f"expected 'dlner-metrics-v1'")
    series = root.get("series")
    if not isinstance(series, dict):
        fail(errors, f"{path}: 'series' missing or not an object")
        return
    for name, body in series.items():
        if not isinstance(body, dict):
            fail(errors, f"{path}: series '{name}' is not an object")
            continue
        kind = body.get("type")
        if kind not in METRIC_TYPES:
            fail(errors, f"{path}: series '{name}' has invalid type {kind!r}")
        elif kind == "series":
            if not isinstance(body.get("points"), list):
                fail(errors, f"{path}: series '{name}' missing points list")
        elif kind in ("histogram", "windowed_histogram"):
            keys = ("count", "sum", "min", "max", "p50", "p90", "p99")
            if kind == "windowed_histogram":
                keys += ("window_s",)
            for key in keys:
                if not isinstance(body.get(key), (int, float)):
                    fail(errors,
                         f"{path}: {kind} '{name}' missing '{key}'")
        elif kind == "windowed_counter":
            for key in ("value", "rate_per_sec", "window_s"):
                if not isinstance(body.get(key), (int, float)):
                    fail(errors,
                         f"{path}: windowed_counter '{name}' missing "
                         f"'{key}'")
        elif not isinstance(body.get("value"), (int, float)):
            fail(errors, f"{path}: {kind} '{name}' missing numeric 'value'")
    if len(series) < min_series:
        fail(errors, f"{path}: {len(series)} series < required {min_series}")
    for spec in require_metrics:
        name, _, key = spec.partition(":")
        if name not in series:
            have = sorted(series)[:20]
            fail(errors, f"{path}: required metric '{name}' not found "
                         f"(have: {have})")
            continue
        if key:
            value = series[name].get(key) if isinstance(series[name], dict) \
                else None
            if not isinstance(value, (int, float)) or value == 0:
                fail(errors, f"{path}: metric '{name}' key '{key}' is "
                             f"{value!r}, expected nonzero number")
    dropped = series.get("trace.dropped_spans")
    if isinstance(dropped, dict) and isinstance(dropped.get("value"),
                                                (int, float)):
        if dropped["value"] > 0:
            print(f"WARN: {path}: trace.dropped_spans = "
                  f"{dropped['value']:.0f} (span ring wraparound; the trace "
                  f"is missing its oldest spans — lower --trace-sample-rate "
                  f"or shorten the capture)", file=sys.stderr)
    print(f"{path}: {len(series)} series")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trace", help="Chrome trace_event JSON to validate")
    parser.add_argument("--require-span", action="append", default=[],
                        metavar="NAME",
                        help="span name that must appear (repeatable)")
    parser.add_argument("--require-span-arg", action="append", default=[],
                        metavar="NAME:KEY",
                        help="some span NAME must carry args key KEY "
                             "(repeatable)")
    parser.add_argument("--metrics", help="dlner-metrics-v1 JSON to validate")
    parser.add_argument("--min-series", type=int, default=1,
                        help="minimum number of metric series (default 1)")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME[:KEY]",
                        help="metric that must appear; with :KEY the key "
                             "must also be a nonzero number (repeatable)")
    args = parser.parse_args()
    if not args.trace and not args.metrics:
        parser.error("nothing to check: pass --trace and/or --metrics")

    errors = []
    if args.trace:
        check_trace(args.trace, args.require_span, args.require_span_arg,
                    errors)
    if args.metrics:
        check_metrics(args.metrics, args.min_series, args.require_metric,
                      errors)
    if errors:
        print(f"{len(errors)} check(s) failed", file=sys.stderr)
        return 1
    print("all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
