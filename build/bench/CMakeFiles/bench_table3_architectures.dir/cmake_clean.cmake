file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_architectures.dir/bench_table3_architectures.cc.o"
  "CMakeFiles/bench_table3_architectures.dir/bench_table3_architectures.cc.o.d"
  "bench_table3_architectures"
  "bench_table3_architectures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_architectures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
