# Empty dependencies file for bench_complexity_crossover.
# This may be replaced when dependencies are built.
