file(REMOVE_RECURSE
  "CMakeFiles/bench_complexity_crossover.dir/bench_complexity_crossover.cc.o"
  "CMakeFiles/bench_complexity_crossover.dir/bench_complexity_crossover.cc.o.d"
  "bench_complexity_crossover"
  "bench_complexity_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complexity_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
