file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_char_representations.dir/bench_fig3_char_representations.cc.o"
  "CMakeFiles/bench_fig3_char_representations.dir/bench_fig3_char_representations.cc.o.d"
  "bench_fig3_char_representations"
  "bench_fig3_char_representations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_char_representations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
