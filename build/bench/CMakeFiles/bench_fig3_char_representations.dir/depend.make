# Empty dependencies file for bench_fig3_char_representations.
# This may be replaced when dependencies are built.
