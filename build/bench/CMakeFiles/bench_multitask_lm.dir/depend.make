# Empty dependencies file for bench_multitask_lm.
# This may be replaced when dependencies are built.
