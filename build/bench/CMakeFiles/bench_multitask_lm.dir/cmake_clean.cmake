file(REMOVE_RECURSE
  "CMakeFiles/bench_multitask_lm.dir/bench_multitask_lm.cc.o"
  "CMakeFiles/bench_multitask_lm.dir/bench_multitask_lm.cc.o.d"
  "bench_multitask_lm"
  "bench_multitask_lm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multitask_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
