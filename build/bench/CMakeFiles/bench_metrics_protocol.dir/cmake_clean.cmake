file(REMOVE_RECURSE
  "CMakeFiles/bench_metrics_protocol.dir/bench_metrics_protocol.cc.o"
  "CMakeFiles/bench_metrics_protocol.dir/bench_metrics_protocol.cc.o.d"
  "bench_metrics_protocol"
  "bench_metrics_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metrics_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
