# Empty dependencies file for bench_metrics_protocol.
# This may be replaced when dependencies are built.
