# Empty dependencies file for bench_pretrained_embeddings.
# This may be replaced when dependencies are built.
