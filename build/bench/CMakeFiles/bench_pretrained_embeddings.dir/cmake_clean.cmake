file(REMOVE_RECURSE
  "CMakeFiles/bench_pretrained_embeddings.dir/bench_pretrained_embeddings.cc.o"
  "CMakeFiles/bench_pretrained_embeddings.dir/bench_pretrained_embeddings.cc.o.d"
  "bench_pretrained_embeddings"
  "bench_pretrained_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pretrained_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
