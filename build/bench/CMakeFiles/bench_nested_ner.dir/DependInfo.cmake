
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_nested_ner.cc" "bench/CMakeFiles/bench_nested_ner.dir/bench_nested_ner.cc.o" "gcc" "bench/CMakeFiles/bench_nested_ner.dir/bench_nested_ner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/applied/CMakeFiles/dlner_applied.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dlner_core.dir/DependInfo.cmake"
  "/root/repo/build/src/embeddings/CMakeFiles/dlner_embeddings.dir/DependInfo.cmake"
  "/root/repo/build/src/encoders/CMakeFiles/dlner_encoders.dir/DependInfo.cmake"
  "/root/repo/build/src/decoders/CMakeFiles/dlner_decoders.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dlner_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/dlner_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dlner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dlner_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
