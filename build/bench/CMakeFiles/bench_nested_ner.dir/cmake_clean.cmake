file(REMOVE_RECURSE
  "CMakeFiles/bench_nested_ner.dir/bench_nested_ner.cc.o"
  "CMakeFiles/bench_nested_ner.dir/bench_nested_ner.cc.o.d"
  "bench_nested_ner"
  "bench_nested_ner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nested_ner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
