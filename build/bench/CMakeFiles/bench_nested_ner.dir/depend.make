# Empty dependencies file for bench_nested_ner.
# This may be replaced when dependencies are built.
