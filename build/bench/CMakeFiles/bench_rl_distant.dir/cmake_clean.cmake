file(REMOVE_RECURSE
  "CMakeFiles/bench_rl_distant.dir/bench_rl_distant.cc.o"
  "CMakeFiles/bench_rl_distant.dir/bench_rl_distant.cc.o.d"
  "bench_rl_distant"
  "bench_rl_distant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rl_distant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
