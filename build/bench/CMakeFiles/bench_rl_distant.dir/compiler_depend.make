# Empty compiler generated dependencies file for bench_rl_distant.
# This may be replaced when dependencies are built.
