# Empty compiler generated dependencies file for bench_decoder_scaling.
# This may be replaced when dependencies are built.
