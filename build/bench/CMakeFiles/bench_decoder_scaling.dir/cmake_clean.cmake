file(REMOVE_RECURSE
  "CMakeFiles/bench_decoder_scaling.dir/bench_decoder_scaling.cc.o"
  "CMakeFiles/bench_decoder_scaling.dir/bench_decoder_scaling.cc.o.d"
  "bench_decoder_scaling"
  "bench_decoder_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decoder_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
