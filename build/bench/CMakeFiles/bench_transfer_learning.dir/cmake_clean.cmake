file(REMOVE_RECURSE
  "CMakeFiles/bench_transfer_learning.dir/bench_transfer_learning.cc.o"
  "CMakeFiles/bench_transfer_learning.dir/bench_transfer_learning.cc.o.d"
  "bench_transfer_learning"
  "bench_transfer_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transfer_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
