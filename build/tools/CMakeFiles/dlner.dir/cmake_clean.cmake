file(REMOVE_RECURSE
  "CMakeFiles/dlner.dir/dlner_cli.cc.o"
  "CMakeFiles/dlner.dir/dlner_cli.cc.o.d"
  "dlner"
  "dlner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
