# Empty dependencies file for dlner.
# This may be replaced when dependencies are built.
