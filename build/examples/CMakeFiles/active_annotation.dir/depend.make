# Empty dependencies file for active_annotation.
# This may be replaced when dependencies are built.
