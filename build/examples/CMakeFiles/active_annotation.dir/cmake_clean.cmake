file(REMOVE_RECURSE
  "CMakeFiles/active_annotation.dir/active_annotation.cpp.o"
  "CMakeFiles/active_annotation.dir/active_annotation.cpp.o.d"
  "active_annotation"
  "active_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
