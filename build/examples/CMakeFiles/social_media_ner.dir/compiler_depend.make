# Empty compiler generated dependencies file for social_media_ner.
# This may be replaced when dependencies are built.
