file(REMOVE_RECURSE
  "CMakeFiles/social_media_ner.dir/social_media_ner.cpp.o"
  "CMakeFiles/social_media_ner.dir/social_media_ner.cpp.o.d"
  "social_media_ner"
  "social_media_ner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_media_ner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
