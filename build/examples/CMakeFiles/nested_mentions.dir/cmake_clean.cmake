file(REMOVE_RECURSE
  "CMakeFiles/nested_mentions.dir/nested_mentions.cpp.o"
  "CMakeFiles/nested_mentions.dir/nested_mentions.cpp.o.d"
  "nested_mentions"
  "nested_mentions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nested_mentions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
