# Empty dependencies file for nested_mentions.
# This may be replaced when dependencies are built.
