# Empty compiler generated dependencies file for low_resource_transfer.
# This may be replaced when dependencies are built.
