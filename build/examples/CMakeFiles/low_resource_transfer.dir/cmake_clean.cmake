file(REMOVE_RECURSE
  "CMakeFiles/low_resource_transfer.dir/low_resource_transfer.cpp.o"
  "CMakeFiles/low_resource_transfer.dir/low_resource_transfer.cpp.o.d"
  "low_resource_transfer"
  "low_resource_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/low_resource_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
