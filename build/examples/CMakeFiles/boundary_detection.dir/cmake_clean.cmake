file(REMOVE_RECURSE
  "CMakeFiles/boundary_detection.dir/boundary_detection.cpp.o"
  "CMakeFiles/boundary_detection.dir/boundary_detection.cpp.o.d"
  "boundary_detection"
  "boundary_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boundary_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
