# Empty dependencies file for boundary_detection.
# This may be replaced when dependencies are built.
