# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/ops_grad_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/rnn_test[1]_include.cmake")
include("/root/repo/build/tests/optim_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/embeddings_test[1]_include.cmake")
include("/root/repo/build/tests/encoders_test[1]_include.cmake")
include("/root/repo/build/tests/decoders_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/applied_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/recursive_fofe_test[1]_include.cmake")
