# Empty compiler generated dependencies file for decoders_test.
# This may be replaced when dependencies are built.
