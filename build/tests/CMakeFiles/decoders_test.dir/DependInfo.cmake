
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/decoders_test.cc" "tests/CMakeFiles/decoders_test.dir/decoders_test.cc.o" "gcc" "tests/CMakeFiles/decoders_test.dir/decoders_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/decoders/CMakeFiles/dlner_decoders.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dlner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dlner_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
