file(REMOVE_RECURSE
  "CMakeFiles/decoders_test.dir/decoders_test.cc.o"
  "CMakeFiles/decoders_test.dir/decoders_test.cc.o.d"
  "decoders_test"
  "decoders_test.pdb"
  "decoders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
