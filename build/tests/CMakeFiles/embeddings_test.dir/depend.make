# Empty dependencies file for embeddings_test.
# This may be replaced when dependencies are built.
