# Empty compiler generated dependencies file for applied_test.
# This may be replaced when dependencies are built.
