file(REMOVE_RECURSE
  "CMakeFiles/applied_test.dir/applied_test.cc.o"
  "CMakeFiles/applied_test.dir/applied_test.cc.o.d"
  "applied_test"
  "applied_test.pdb"
  "applied_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applied_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
