# Empty compiler generated dependencies file for recursive_fofe_test.
# This may be replaced when dependencies are built.
