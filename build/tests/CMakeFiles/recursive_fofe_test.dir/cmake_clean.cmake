file(REMOVE_RECURSE
  "CMakeFiles/recursive_fofe_test.dir/recursive_fofe_test.cc.o"
  "CMakeFiles/recursive_fofe_test.dir/recursive_fofe_test.cc.o.d"
  "recursive_fofe_test"
  "recursive_fofe_test.pdb"
  "recursive_fofe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recursive_fofe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
