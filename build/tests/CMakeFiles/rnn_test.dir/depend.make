# Empty dependencies file for rnn_test.
# This may be replaced when dependencies are built.
