file(REMOVE_RECURSE
  "libdlner_core.a"
)
