file(REMOVE_RECURSE
  "CMakeFiles/dlner_core.dir/config.cc.o"
  "CMakeFiles/dlner_core.dir/config.cc.o.d"
  "CMakeFiles/dlner_core.dir/model.cc.o"
  "CMakeFiles/dlner_core.dir/model.cc.o.d"
  "CMakeFiles/dlner_core.dir/pipeline.cc.o"
  "CMakeFiles/dlner_core.dir/pipeline.cc.o.d"
  "CMakeFiles/dlner_core.dir/trainer.cc.o"
  "CMakeFiles/dlner_core.dir/trainer.cc.o.d"
  "libdlner_core.a"
  "libdlner_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
