# Empty compiler generated dependencies file for dlner_core.
# This may be replaced when dependencies are built.
