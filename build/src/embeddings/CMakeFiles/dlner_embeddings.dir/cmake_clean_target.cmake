file(REMOVE_RECURSE
  "libdlner_embeddings.a"
)
