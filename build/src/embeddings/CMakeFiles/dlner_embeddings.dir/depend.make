# Empty dependencies file for dlner_embeddings.
# This may be replaced when dependencies are built.
