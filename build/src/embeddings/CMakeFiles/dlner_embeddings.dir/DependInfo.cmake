
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embeddings/char_features.cc" "src/embeddings/CMakeFiles/dlner_embeddings.dir/char_features.cc.o" "gcc" "src/embeddings/CMakeFiles/dlner_embeddings.dir/char_features.cc.o.d"
  "/root/repo/src/embeddings/features.cc" "src/embeddings/CMakeFiles/dlner_embeddings.dir/features.cc.o" "gcc" "src/embeddings/CMakeFiles/dlner_embeddings.dir/features.cc.o.d"
  "/root/repo/src/embeddings/lm.cc" "src/embeddings/CMakeFiles/dlner_embeddings.dir/lm.cc.o" "gcc" "src/embeddings/CMakeFiles/dlner_embeddings.dir/lm.cc.o.d"
  "/root/repo/src/embeddings/sgns.cc" "src/embeddings/CMakeFiles/dlner_embeddings.dir/sgns.cc.o" "gcc" "src/embeddings/CMakeFiles/dlner_embeddings.dir/sgns.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/dlner_data.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/dlner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dlner_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
