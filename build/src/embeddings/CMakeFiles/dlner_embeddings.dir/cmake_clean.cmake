file(REMOVE_RECURSE
  "CMakeFiles/dlner_embeddings.dir/char_features.cc.o"
  "CMakeFiles/dlner_embeddings.dir/char_features.cc.o.d"
  "CMakeFiles/dlner_embeddings.dir/features.cc.o"
  "CMakeFiles/dlner_embeddings.dir/features.cc.o.d"
  "CMakeFiles/dlner_embeddings.dir/lm.cc.o"
  "CMakeFiles/dlner_embeddings.dir/lm.cc.o.d"
  "CMakeFiles/dlner_embeddings.dir/sgns.cc.o"
  "CMakeFiles/dlner_embeddings.dir/sgns.cc.o.d"
  "libdlner_embeddings.a"
  "libdlner_embeddings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_embeddings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
