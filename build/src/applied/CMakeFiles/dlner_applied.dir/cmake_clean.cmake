file(REMOVE_RECURSE
  "CMakeFiles/dlner_applied.dir/active.cc.o"
  "CMakeFiles/dlner_applied.dir/active.cc.o.d"
  "CMakeFiles/dlner_applied.dir/adversarial.cc.o"
  "CMakeFiles/dlner_applied.dir/adversarial.cc.o.d"
  "CMakeFiles/dlner_applied.dir/distant.cc.o"
  "CMakeFiles/dlner_applied.dir/distant.cc.o.d"
  "CMakeFiles/dlner_applied.dir/multitask.cc.o"
  "CMakeFiles/dlner_applied.dir/multitask.cc.o.d"
  "CMakeFiles/dlner_applied.dir/nested.cc.o"
  "CMakeFiles/dlner_applied.dir/nested.cc.o.d"
  "CMakeFiles/dlner_applied.dir/transfer.cc.o"
  "CMakeFiles/dlner_applied.dir/transfer.cc.o.d"
  "libdlner_applied.a"
  "libdlner_applied.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_applied.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
