# Empty compiler generated dependencies file for dlner_applied.
# This may be replaced when dependencies are built.
