file(REMOVE_RECURSE
  "libdlner_applied.a"
)
