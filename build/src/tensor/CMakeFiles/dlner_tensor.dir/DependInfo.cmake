
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/gradcheck.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/gradcheck.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/gradcheck.cc.o.d"
  "/root/repo/src/tensor/nn.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/nn.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/nn.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/ops.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/ops.cc.o.d"
  "/root/repo/src/tensor/optim.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/optim.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/optim.cc.o.d"
  "/root/repo/src/tensor/rng.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/rng.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/rng.cc.o.d"
  "/root/repo/src/tensor/rnn.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/rnn.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/rnn.cc.o.d"
  "/root/repo/src/tensor/serialize.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/serialize.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/serialize.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/tensor.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/tensor.cc.o.d"
  "/root/repo/src/tensor/variable.cc" "src/tensor/CMakeFiles/dlner_tensor.dir/variable.cc.o" "gcc" "src/tensor/CMakeFiles/dlner_tensor.dir/variable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
