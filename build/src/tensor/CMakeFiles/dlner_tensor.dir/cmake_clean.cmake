file(REMOVE_RECURSE
  "CMakeFiles/dlner_tensor.dir/gradcheck.cc.o"
  "CMakeFiles/dlner_tensor.dir/gradcheck.cc.o.d"
  "CMakeFiles/dlner_tensor.dir/nn.cc.o"
  "CMakeFiles/dlner_tensor.dir/nn.cc.o.d"
  "CMakeFiles/dlner_tensor.dir/ops.cc.o"
  "CMakeFiles/dlner_tensor.dir/ops.cc.o.d"
  "CMakeFiles/dlner_tensor.dir/optim.cc.o"
  "CMakeFiles/dlner_tensor.dir/optim.cc.o.d"
  "CMakeFiles/dlner_tensor.dir/rng.cc.o"
  "CMakeFiles/dlner_tensor.dir/rng.cc.o.d"
  "CMakeFiles/dlner_tensor.dir/rnn.cc.o"
  "CMakeFiles/dlner_tensor.dir/rnn.cc.o.d"
  "CMakeFiles/dlner_tensor.dir/serialize.cc.o"
  "CMakeFiles/dlner_tensor.dir/serialize.cc.o.d"
  "CMakeFiles/dlner_tensor.dir/tensor.cc.o"
  "CMakeFiles/dlner_tensor.dir/tensor.cc.o.d"
  "CMakeFiles/dlner_tensor.dir/variable.cc.o"
  "CMakeFiles/dlner_tensor.dir/variable.cc.o.d"
  "libdlner_tensor.a"
  "libdlner_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
