# Empty dependencies file for dlner_tensor.
# This may be replaced when dependencies are built.
