file(REMOVE_RECURSE
  "libdlner_tensor.a"
)
