# Empty compiler generated dependencies file for dlner_encoders.
# This may be replaced when dependencies are built.
