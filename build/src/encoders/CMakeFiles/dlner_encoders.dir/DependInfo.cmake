
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoders/cnn.cc" "src/encoders/CMakeFiles/dlner_encoders.dir/cnn.cc.o" "gcc" "src/encoders/CMakeFiles/dlner_encoders.dir/cnn.cc.o.d"
  "/root/repo/src/encoders/encoder.cc" "src/encoders/CMakeFiles/dlner_encoders.dir/encoder.cc.o" "gcc" "src/encoders/CMakeFiles/dlner_encoders.dir/encoder.cc.o.d"
  "/root/repo/src/encoders/recursive.cc" "src/encoders/CMakeFiles/dlner_encoders.dir/recursive.cc.o" "gcc" "src/encoders/CMakeFiles/dlner_encoders.dir/recursive.cc.o.d"
  "/root/repo/src/encoders/rnn_encoder.cc" "src/encoders/CMakeFiles/dlner_encoders.dir/rnn_encoder.cc.o" "gcc" "src/encoders/CMakeFiles/dlner_encoders.dir/rnn_encoder.cc.o.d"
  "/root/repo/src/encoders/transformer.cc" "src/encoders/CMakeFiles/dlner_encoders.dir/transformer.cc.o" "gcc" "src/encoders/CMakeFiles/dlner_encoders.dir/transformer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/dlner_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
