file(REMOVE_RECURSE
  "libdlner_encoders.a"
)
