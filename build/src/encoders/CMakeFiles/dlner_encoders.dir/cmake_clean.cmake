file(REMOVE_RECURSE
  "CMakeFiles/dlner_encoders.dir/cnn.cc.o"
  "CMakeFiles/dlner_encoders.dir/cnn.cc.o.d"
  "CMakeFiles/dlner_encoders.dir/encoder.cc.o"
  "CMakeFiles/dlner_encoders.dir/encoder.cc.o.d"
  "CMakeFiles/dlner_encoders.dir/recursive.cc.o"
  "CMakeFiles/dlner_encoders.dir/recursive.cc.o.d"
  "CMakeFiles/dlner_encoders.dir/rnn_encoder.cc.o"
  "CMakeFiles/dlner_encoders.dir/rnn_encoder.cc.o.d"
  "CMakeFiles/dlner_encoders.dir/transformer.cc.o"
  "CMakeFiles/dlner_encoders.dir/transformer.cc.o.d"
  "libdlner_encoders.a"
  "libdlner_encoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_encoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
