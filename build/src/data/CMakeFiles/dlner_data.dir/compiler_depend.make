# Empty compiler generated dependencies file for dlner_data.
# This may be replaced when dependencies are built.
