file(REMOVE_RECURSE
  "libdlner_data.a"
)
