file(REMOVE_RECURSE
  "CMakeFiles/dlner_data.dir/banks.cc.o"
  "CMakeFiles/dlner_data.dir/banks.cc.o.d"
  "CMakeFiles/dlner_data.dir/dataset.cc.o"
  "CMakeFiles/dlner_data.dir/dataset.cc.o.d"
  "CMakeFiles/dlner_data.dir/gazetteer.cc.o"
  "CMakeFiles/dlner_data.dir/gazetteer.cc.o.d"
  "CMakeFiles/dlner_data.dir/synthetic.cc.o"
  "CMakeFiles/dlner_data.dir/synthetic.cc.o.d"
  "libdlner_data.a"
  "libdlner_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
