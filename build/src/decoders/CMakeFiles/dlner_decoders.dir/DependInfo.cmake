
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/decoders/crf.cc" "src/decoders/CMakeFiles/dlner_decoders.dir/crf.cc.o" "gcc" "src/decoders/CMakeFiles/dlner_decoders.dir/crf.cc.o.d"
  "/root/repo/src/decoders/fofe.cc" "src/decoders/CMakeFiles/dlner_decoders.dir/fofe.cc.o" "gcc" "src/decoders/CMakeFiles/dlner_decoders.dir/fofe.cc.o.d"
  "/root/repo/src/decoders/pointer.cc" "src/decoders/CMakeFiles/dlner_decoders.dir/pointer.cc.o" "gcc" "src/decoders/CMakeFiles/dlner_decoders.dir/pointer.cc.o.d"
  "/root/repo/src/decoders/rnn_decoder.cc" "src/decoders/CMakeFiles/dlner_decoders.dir/rnn_decoder.cc.o" "gcc" "src/decoders/CMakeFiles/dlner_decoders.dir/rnn_decoder.cc.o.d"
  "/root/repo/src/decoders/semicrf.cc" "src/decoders/CMakeFiles/dlner_decoders.dir/semicrf.cc.o" "gcc" "src/decoders/CMakeFiles/dlner_decoders.dir/semicrf.cc.o.d"
  "/root/repo/src/decoders/softmax.cc" "src/decoders/CMakeFiles/dlner_decoders.dir/softmax.cc.o" "gcc" "src/decoders/CMakeFiles/dlner_decoders.dir/softmax.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/text/CMakeFiles/dlner_text.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/dlner_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
