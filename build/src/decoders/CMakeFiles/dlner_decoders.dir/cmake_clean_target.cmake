file(REMOVE_RECURSE
  "libdlner_decoders.a"
)
