# Empty compiler generated dependencies file for dlner_decoders.
# This may be replaced when dependencies are built.
