file(REMOVE_RECURSE
  "CMakeFiles/dlner_decoders.dir/crf.cc.o"
  "CMakeFiles/dlner_decoders.dir/crf.cc.o.d"
  "CMakeFiles/dlner_decoders.dir/fofe.cc.o"
  "CMakeFiles/dlner_decoders.dir/fofe.cc.o.d"
  "CMakeFiles/dlner_decoders.dir/pointer.cc.o"
  "CMakeFiles/dlner_decoders.dir/pointer.cc.o.d"
  "CMakeFiles/dlner_decoders.dir/rnn_decoder.cc.o"
  "CMakeFiles/dlner_decoders.dir/rnn_decoder.cc.o.d"
  "CMakeFiles/dlner_decoders.dir/semicrf.cc.o"
  "CMakeFiles/dlner_decoders.dir/semicrf.cc.o.d"
  "CMakeFiles/dlner_decoders.dir/softmax.cc.o"
  "CMakeFiles/dlner_decoders.dir/softmax.cc.o.d"
  "libdlner_decoders.a"
  "libdlner_decoders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_decoders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
