# Empty compiler generated dependencies file for dlner_eval.
# This may be replaced when dependencies are built.
