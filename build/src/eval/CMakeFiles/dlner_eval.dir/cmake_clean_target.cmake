file(REMOVE_RECURSE
  "libdlner_eval.a"
)
