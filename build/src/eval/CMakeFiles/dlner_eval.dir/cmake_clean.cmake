file(REMOVE_RECURSE
  "CMakeFiles/dlner_eval.dir/metrics.cc.o"
  "CMakeFiles/dlner_eval.dir/metrics.cc.o.d"
  "libdlner_eval.a"
  "libdlner_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
