file(REMOVE_RECURSE
  "CMakeFiles/dlner_text.dir/conll.cc.o"
  "CMakeFiles/dlner_text.dir/conll.cc.o.d"
  "CMakeFiles/dlner_text.dir/tagging.cc.o"
  "CMakeFiles/dlner_text.dir/tagging.cc.o.d"
  "CMakeFiles/dlner_text.dir/types.cc.o"
  "CMakeFiles/dlner_text.dir/types.cc.o.d"
  "CMakeFiles/dlner_text.dir/vocab.cc.o"
  "CMakeFiles/dlner_text.dir/vocab.cc.o.d"
  "libdlner_text.a"
  "libdlner_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dlner_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
