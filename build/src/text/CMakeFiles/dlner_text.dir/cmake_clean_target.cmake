file(REMOVE_RECURSE
  "libdlner_text.a"
)
