# Empty dependencies file for dlner_text.
# This may be replaced when dependencies are built.
