// Quickstart: train a BiLSTM-CRF tagger (the survey's most common
// architecture) on a synthetic newswire corpus, evaluate it, tag new text,
// and round-trip the model through disk.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/pipeline.h"
#include "data/dataset.h"

int main() {
  using namespace dlner;

  // 1. Data: a CoNLL03-like corpus (4 entity types, formal newswire).
  text::Corpus corpus = data::MakeDataset("conll-like", 400, /*seed=*/1);
  data::DataSplit split = data::SplitCorpus(corpus, 0.7, 0.15, /*seed=*/2);
  std::printf("train=%d dev=%d test=%d sentences\n", split.train.size(),
              split.dev.size(), split.test.size());

  // 2. Architecture: word embeddings + char-CNN -> BiLSTM -> CRF
  //    (Ma & Hovy 2016, the reference system of the survey's Table 3).
  core::NerConfig config;
  config.use_char_cnn = true;
  config.use_shape = true;
  config.encoder = "bilstm";
  config.decoder = "crf";
  std::printf("architecture: %s\n", config.Describe().c_str());

  core::TrainConfig train_config;
  train_config.epochs = 12;
  train_config.lr = 0.015;
  train_config.patience = 4;  // early stopping on dev F1

  // 3. Train.
  auto pipeline = core::Pipeline::Train(
      config, train_config, split.train, &split.dev,
      data::EntityTypesFor(data::Genre::kNews));
  std::printf("best dev F1 = %.3f (epoch %d)\n",
              pipeline->train_result().best_dev_f1,
              pipeline->train_result().best_epoch);

  // 4. Evaluate: exact-match micro/macro F1 (survey Section 2.3.1).
  eval::ExactResult result = pipeline->Evaluate(split.test);
  std::printf("test micro-F1 = %.3f  macro-F1 = %.3f\n", result.micro.f1(),
              result.macro_f1);
  for (const auto& [type, prf] : result.per_type) {
    std::printf("  %-6s P=%.3f R=%.3f F1=%.3f\n", type.c_str(),
                prf.precision(), prf.recall(), prf.f1());
  }

  // 5. Tag new text.
  text::Sentence tagged =
      pipeline->TagText("Elena Rossi joined Quantum Labs in Vienna .");
  for (const text::Span& span : tagged.spans) {
    std::printf("  [%d,%d) %s :", span.start, span.end, span.type.c_str());
    for (int t = span.start; t < span.end; ++t) {
      std::printf(" %s", tagged.tokens[t].c_str());
    }
    std::printf("\n");
  }

  // 6. Persist and restore.
  const char* path = "/tmp/dlner_quickstart_model.bin";
  if (pipeline->Save(path)) {
    auto restored = core::Pipeline::Load(path);
    std::printf("model round-trips through %s: %s\n", path,
                restored != nullptr ? "ok" : "FAILED");
  }
  return 0;
}
