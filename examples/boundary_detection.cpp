// Entity boundary detection as a dedicated subtask (survey Section 5.2's
// future direction: "define named entity boundary detection as a dedicated
// task to detect NE boundaries while ignoring the NE types", and Section
// 4.1's segmentation/categorization multi-task decomposition).
//
// A MultiTaskBoundaryModel trains the typed tagger and an untyped B/I/O
// boundary head on a shared encoder. The example reports:
//   * typed exact-match F1 of the main head,
//   * untyped boundary F1 of the auxiliary head (the "robust recognizer
//     shared across domains" the survey envisions),
//   * a paired significance test between the multi-task model and a
//     plain single-task baseline.
#include <cstdio>

#include "applied/multitask.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "eval/metrics.h"

int main() {
  using namespace dlner;

  text::Corpus corpus = data::MakeDataset("conll-like", 400, 61);
  data::DataSplit split = data::SplitCorpus(corpus, 0.75, 0.0, 62);
  const auto& types = data::EntityTypesFor(data::Genre::kNews);

  core::NerConfig config;
  config.use_char_cnn = true;
  config.word_unk_dropout = 0.2;
  core::TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 0.015;

  // Plain single-task baseline.
  core::NerModel baseline(config, split.train, types);
  {
    core::Trainer trainer(&baseline, tc);
    trainer.Train(split.train, nullptr);
  }

  // Multi-task: typed NER + untyped boundary detection.
  core::NerConfig mtl_config = config;
  mtl_config.seed = 63;
  applied::MultiTaskBoundaryModel mtl(mtl_config, split.train, types,
                                      /*boundary_weight=*/0.5);
  {
    core::Trainer trainer(&mtl, tc);
    trainer.Train(split.train, nullptr);
  }

  // Typed evaluation + prediction collection for the significance test.
  std::vector<std::vector<text::Span>> gold, pred_base, pred_mtl;
  eval::ExactMatchEvaluator boundary_eval;
  for (const text::Sentence& s : split.test.sentences) {
    gold.push_back(s.spans);
    pred_base.push_back(baseline.Predict(s.tokens));
    pred_mtl.push_back(mtl.Predict(s.tokens));
    // Untyped boundary evaluation of the dedicated head.
    std::vector<text::Span> untyped_gold = s.spans;
    for (text::Span& sp : untyped_gold) sp.type = "ENT";
    boundary_eval.Add(untyped_gold, mtl.PredictBoundaries(s.tokens));
  }

  const double f1_base = eval::EvaluateExact(gold, pred_base).micro.f1();
  const double f1_mtl = eval::EvaluateExact(gold, pred_mtl).micro.f1();
  const double f1_boundary = boundary_eval.Result().micro.f1();
  const double p_value =
      eval::ApproximateRandomizationPValue(gold, pred_mtl, pred_base,
                                           /*trials=*/1000, /*seed=*/64);

  std::printf("%-44s %8s\n", "model", "test F1");
  std::printf("%-44s %8.3f\n", "single-task typed NER", f1_base);
  std::printf("%-44s %8.3f\n", "multi-task typed NER (+boundary aux)",
              f1_mtl);
  std::printf("%-44s %8.3f\n",
              "dedicated boundary head (untyped B/I/O)", f1_boundary);
  std::printf(
      "\npaired approximate-randomization test (multi-task vs single-task):\n"
      "  |delta F1| = %.3f, p = %.3f %s\n",
      std::abs(f1_mtl - f1_base), p_value,
      p_value < 0.05 ? "(significant at 0.05)"
                     : "(not significant at 0.05)");
  std::printf(
      "\nTakeaway: boundary detection is easier than typed NER (no type\n"
      "confusion), matching the survey's argument for decoupling boundary\n"
      "detection from type classification (Section 5.2).\n");
  return 0;
}
