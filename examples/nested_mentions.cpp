// Nested entity mentions (survey Sections 3.3.2 and 5.1): flat sequence
// labeling cannot emit overlapping spans — "University of Singapore" (ORG)
// containing "Singapore" (LOC) loses one of the two. Layered flat NER (Ju
// et al. 2018) stacks one flat model per nesting level and unions their
// predictions.
#include <cstdio>

#include "applied/nested.h"
#include "core/trainer.h"
#include "data/dataset.h"

int main() {
  using namespace dlner;

  text::Corpus corpus = data::MakeDataset("nested-like", 400, 31);
  data::DataSplit split = data::SplitCorpus(corpus, 0.75, 0.0, 32);
  const auto types = data::EntityTypesFor(data::Genre::kNested);

  data::CorpusStats stats = data::ComputeStats(split.test);
  std::printf("test corpus: %d sentences, %.0f%% contain nested mentions\n",
              stats.sentences, 100.0 * stats.nested_fraction);

  core::NerConfig config;
  config.use_char_cnn = true;
  config.encoder = "bilstm";
  config.decoder = "crf";

  core::TrainConfig tc;
  tc.epochs = 8;
  tc.lr = 0.015;

  // Flat baseline: trained on the outermost layer only (what a single
  // sequence-labeling model can represent).
  auto levels = applied::SplitNestingLevels(split.train);
  text::Corpus outer_only;
  outer_only.sentences.resize(split.train.sentences.size());
  for (size_t i = 0; i < outer_only.sentences.size(); ++i) {
    outer_only.sentences[i].tokens = split.train.sentences[i].tokens;
    // Highest non-empty level per sentence = outermost annotation.
    for (int l = static_cast<int>(levels.size()) - 1; l >= 0; --l) {
      if (!levels[l].sentences[i].spans.empty()) {
        outer_only.sentences[i].spans = levels[l].sentences[i].spans;
        break;
      }
    }
  }
  core::NerModel flat(config, split.train, types);
  core::Trainer flat_trainer(&flat, tc);
  flat_trainer.Train(outer_only, nullptr);
  const double flat_f1 = flat.Evaluate(split.test).micro.f1();

  // Layered model: one flat tagger per nesting level.
  applied::LayeredNerModel layered(config, types);
  layered.Train(split.train, tc);
  const double layered_f1 = layered.Evaluate(split.test).micro.f1();

  std::printf("\n%-28s micro-F1 (nested gold)\n", "model");
  std::printf("%-28s %.3f\n", "flat (outermost only)", flat_f1);
  std::printf("%-28s %.3f   (%d levels)\n", "layered flat NER", layered_f1,
              layered.num_levels());
  std::printf(
      "\nExpected shape: the flat model forfeits every inner mention, so\n"
      "the layered model recovers a large recall gap.\n");
  return 0;
}
