// Low-resource cross-domain transfer (survey Section 4.2): a source model
// trained on abundant newswire is adapted to a tiny noisy social-media
// corpus by parameter transfer + fine-tuning (Yang et al. 2017; Lee et al.
// 2017), versus training the target model from scratch.
#include <cstdio>

#include "applied/transfer.h"
#include "core/trainer.h"
#include "data/dataset.h"

int main() {
  using namespace dlner;

  core::NerConfig config;
  config.use_char_cnn = true;
  config.encoder = "bilstm";
  config.decoder = "crf";

  core::TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 0.015;

  // Source: large formal-news corpus.
  text::Corpus source_corpus = data::MakeDataset("conll-like", 400, 11);
  core::NerModel source(config, source_corpus,
                        data::EntityTypesFor(data::Genre::kNews));
  {
    core::Trainer trainer(&source, tc);
    trainer.Train(source_corpus, nullptr);
  }
  std::printf("source (news) F1 on its own domain: %.3f\n\n",
              source.Evaluate(source_corpus).micro.f1());

  // Target: small noisy social-media corpus with a different label set.
  text::Corpus target_pool = data::MakeDataset("wnut-like", 260, 12);
  data::DataSplit target = data::SplitCorpus(target_pool, 0.6, 0.0, 13);
  const auto target_types = data::EntityTypesFor(data::Genre::kSocial);

  std::printf("%8s %12s %12s\n", "#target", "scratch F1", "fine-tune F1");
  for (int size : {10, 25, 50, 100, 150}) {
    text::Corpus small;
    for (int i = 0; i < size && i < target.train.size(); ++i) {
      small.sentences.push_back(target.train.sentences[i]);
    }

    core::NerConfig scratch_config = config;
    scratch_config.seed = 100 + size;
    core::NerModel scratch(scratch_config, small, target_types);
    core::Trainer scratch_trainer(&scratch, tc);
    scratch_trainer.Train(small, nullptr);

    // Fine-tune: reuse source vocabularies + transferable parameters
    // (char features, encoder); the decoder re-initializes because the
    // label sets differ (Yang et al.'s non-mappable-label-set case).
    auto tuned = applied::MakeFineTuneModel(source, config, target_types);
    core::Trainer tuned_trainer(tuned.get(), tc);
    tuned_trainer.Train(small, nullptr);

    std::printf("%8d %12.3f %12.3f\n", size,
                scratch.Evaluate(target.test).micro.f1(),
                tuned->Evaluate(target.test).micro.f1());
  }
  std::printf(
      "\nExpected shape: fine-tuning dominates at small target sizes and\n"
      "the gap narrows as target data grows (survey Section 4.2).\n");
  return 0;
}
