// NER on noisy user-generated text (the survey's W-NUT setting, Sections
// 3.5 and 5.1): hashtags, typos, lowercased entities, and slang make this
// the hardest benchmark genre (best published F-scores barely above 40%).
//
// The example shows the two mitigations the survey highlights:
//  * character-level representations, which survive typos and casing noise;
//  * auxiliary gazetteer resources (Section 5.2's "DL-based NER on informal
//    text with auxiliary resource").
#include <cstdio>

#include "core/pipeline.h"
#include "data/dataset.h"
#include "data/gazetteer.h"

namespace {

double TrainAndScore(const dlner::core::NerConfig& config,
                     const dlner::data::DataSplit& split,
                     const dlner::core::Resources& resources) {
  using namespace dlner;
  core::TrainConfig tc;
  tc.epochs = 10;
  tc.lr = 0.015;
  auto pipeline = core::Pipeline::Train(
      config, tc, split.train, nullptr,
      data::EntityTypesFor(data::Genre::kSocial), resources);
  return pipeline->Evaluate(split.test).micro.f1();
}

}  // namespace

int main() {
  using namespace dlner;

  text::Corpus corpus = data::MakeDataset("wnut-like", 400, /*seed=*/3);
  data::DataSplit split = data::SplitCorpus(corpus, 0.75, 0.0, 4);

  // An auxiliary dictionary with partial coverage of the domain's entities
  // (a location/person/product list, as one would scrape for a deployment).
  data::Gazetteer gazetteer =
      data::Gazetteer::FromCorpus(split.train, /*coverage=*/0.7, /*seed=*/5);
  core::Resources with_gaz;
  with_gaz.gazetteer = &gazetteer;

  core::NerConfig word_only;
  word_only.encoder = "bilstm";
  word_only.decoder = "crf";

  core::NerConfig with_chars = word_only;
  with_chars.use_char_cnn = true;
  with_chars.use_shape = true;

  core::NerConfig full = with_chars;
  full.use_gazetteer = true;

  std::printf("Noisy user-generated text (W-NUT-like, 6 types)\n");
  std::printf("%-40s %s\n", "architecture", "test micro-F1");
  std::printf("%-40s %.3f\n", word_only.Describe().c_str(),
              TrainAndScore(word_only, split, {}));
  std::printf("%-40s %.3f\n", with_chars.Describe().c_str(),
              TrainAndScore(with_chars, split, {}));
  std::printf("%-40s %.3f\n", full.Describe().c_str(),
              TrainAndScore(full, split, with_gaz));
  std::printf(
      "\nExpected shape: char features and the gazetteer each recover part\n"
      "of the loss caused by typos, lowercasing, and hashtags.\n");
  return 0;
}
