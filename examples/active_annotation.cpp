// Deep active learning for annotation budgeting (survey Section 4.3; Shen
// et al. 2017): uncertainty sampling with incremental training reaches
// near-full-data accuracy with a fraction of the labels.
#include <cstdio>

#include "applied/active.h"
#include "data/dataset.h"

int main() {
  using namespace dlner;

  text::Corpus corpus = data::MakeDataset("conll-like", 500, 21);
  data::DataSplit split = data::SplitCorpus(corpus, 0.8, 0.0, 22);

  core::NerConfig config;
  config.encoder = "bilstm";
  config.decoder = "crf";

  // Full-data reference model.
  core::TrainConfig full_tc;
  full_tc.epochs = 10;
  full_tc.lr = 0.015;
  core::NerModel full_model(config, split.train,
                            data::EntityTypesFor(data::Genre::kNews));
  core::Trainer full_trainer(&full_model, full_tc);
  full_trainer.Train(split.train, nullptr);
  const double full_f1 = full_model.Evaluate(split.test).micro.f1();
  std::printf("full-data model (%d sentences): F1 = %.3f\n\n",
              split.train.size(), full_f1);

  applied::ActiveConfig active_config;
  active_config.seed_size = 25;
  active_config.batch_size = 25;
  active_config.rounds = 8;
  active_config.epochs_per_round = 4;
  active_config.train.lr = 0.015;

  core::NerConfig al_config = config;
  al_config.seed = 77;
  core::NerModel al_model(al_config, split.train,
                          data::EntityTypesFor(data::Genre::kNews));
  applied::ActiveLearner learner(&al_model, active_config);
  auto history = learner.Run(split.train, split.test);

  std::printf("%6s %9s %8s %10s %14s\n", "round", "#labeled", "%pool",
              "test F1", "% of full F1");
  for (const auto& round : history) {
    std::printf("%6d %9d %7.1f%% %10.3f %13.1f%%\n", round.round,
                round.labeled_sentences, 100.0 * round.labeled_fraction,
                round.test_f1, 100.0 * round.test_f1 / full_f1);
  }
  std::printf(
      "\nExpected shape: the curve approaches ~99%% of the full-data F1 with\n"
      "a quarter-to-half of the pool labeled (survey Section 4.3).\n");
  return 0;
}
